// SketchStore — the frozen, queryable image of one IMM build.
//
// The paper's asymmetry (sampling dominates, selection is cheap) is also
// a serving opportunity: generate the RRR sketches ONCE with the full
// martingale machinery, then answer many independent seed-selection
// queries against the frozen pool without regeneration — the same
// build/serve split HBMax exploits by compressing RRR state for reuse.
//
// The store holds two immutable CSR indexes over the same pool:
//   sketch → member vertices   (the flattened pool; drives decrements)
//   vertex → covering sketches (the inverted index; after a pick, jump
//                               straight to the covered sketches instead
//                               of scanning all θ sets)
// plus the precomputed unconstrained greedy sequence up to the build-time
// cap k_max, so plain top-k queries are an O(k) prefix read.
//
// Zero-copy freezing: build() takes ownership of the PoolBuild's storage
// and serves sketch() spans straight from it — arena runs of the sharded
// SegmentedPool, or the RRRSets' own sorted vectors (only bitmap sets
// are expanded, into one side array). The contiguous CSR image is NOT
// materialized at build time; flatten is deferred to save() (or an
// explicit materialize_flat()), so build-and-query-only workloads never
// pay the copy.
//
// Snapshots (magic "EIMMSKS") come in three revisions:
//   v1 — legacy length-prefixed stream of primary data only; load()
//        copies into fresh vectors and recomputes the derived state.
//        Still read (version negotiation), no longer written.
//   v2 — page-aligned section-table format: a header + section table
//        (id, offset, length; every section offset 4096-aligned)
//        followed by the raw arrays, INCLUDING the derived inverted
//        index and default greedy sequence. load_file() mmaps the file
//        read-only and serves every array straight from the mapping —
//        zero pool copies, cold start O(section table + offsets scan)
//        instead of O(pool) — so N serving processes share one
//        page-cache copy of the sketch data. Stream loads of v2 copy
//        the sections into owned vectors (pipes, tests).
//   v3 — v2's layout with a COMPRESSED sketch payload: the sketch-
//        vertices section holds the delta-varint gap streams of all
//        sketches back to back (rrr/gap_codec.hpp — always plain
//        varints on disk; a Huffman-backed store transcodes at save),
//        and an eighth section carries the per-sketch byte offsets.
//        Snapshot size AND serving RSS drop together: loads — mmap'ed
//        or streamed — keep the payload compressed and serve queries
//        decode-on-enumerate. Written only on request
//        (SnapshotSaveOptions::compress); every v2 consumer keeps
//        working unchanged.
//   v4 — the v2/v3 layout with INTEGRITY CHECKSUMS: each section-table
//        entry's reserved u32 now carries the CRC32C of that section's
//        payload bytes (7 sections = raw, 8 = compressed; the table is
//        otherwise bit-identical). The default save format. Stream
//        loads verify every section inline as it is read; mmap loads
//        verify lazily by default (at first QueryEngine construction,
//        preserving the O(table) cold start) or eagerly/never per
//        SnapshotLoadOptions::checksums. A mismatch surfaces as typed
//        bin::FormatError with section+offset — a flipped bit is never
//        served. v2/v3 stay writable (SnapshotSaveOptions::checksum =
//        false) and loadable.
//
// Everything is read-only after build/load — queries allocate their own
// scratch (see QueryEngine) — so any number of threads can serve from one
// store concurrently. save→load→save is bit-identical under both load
// paths, and a deferred-backing store compares equal (operator== is
// logical, not representational) to its own loaded snapshot.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/imm.hpp"
#include "graph/types.hpp"
#include "io/mmap.hpp"
#include "rrr/compressed_pool.hpp"
#include "rrr/pool.hpp"
#include "rrr/pool_view.hpp"
#include "support/macros.hpp"

namespace eimm {

/// Sketch ids are dense [0, num_sketches); 32 bits bounds a store at
/// ~4.3B sketches, far above the 2^22 default generation cap.
using SketchId = std::uint32_t;

/// Build provenance carried in every snapshot: enough to reproduce the
/// store (workload + seed + accuracy) and to label benchmark output.
struct SketchStoreMeta {
  std::string workload;  // free-form dataset label
  std::string model;     // "IC" | "LT"
  std::uint64_t rng_seed = 0;
  double epsilon = 0.0;
  std::uint64_t theta = 0;  // martingale θ the build requested
  bool theta_capped = false;

  friend bool operator==(const SketchStoreMeta&,
                         const SketchStoreMeta&) = default;
};

/// How load_file() should back the store.
enum class SnapshotLoadMode {
  kAuto,    ///< mmap v2 snapshots, stream-read v1 (the serving default)
  kMap,     ///< require the mmap path (v1 files are rejected)
  kStream,  ///< force the copying stream loader even for v2
};

/// When an mmap load of a v4 snapshot verifies the per-section CRC32C
/// checksums (stream loads always verify inline — the bytes are in hand).
enum class ChecksumMode {
  kLazy,   ///< defer to verify_checksums() — first QueryEngine ctor —
           ///< keeping the O(table) mmap cold start
  kEager,  ///< verify every section at load time
  kOff,    ///< skip (diagnostics over known-corrupt files)
};

struct SnapshotLoadOptions {
  SnapshotLoadMode mode = SnapshotLoadMode::kAuto;
  /// Adds the O(pool) scans the mmap path skips by default: per-member
  /// range/ordering checks plus recompute-and-compare of the derived
  /// inverted index and default greedy sequence. Stream loads always
  /// validate the primary payload (v1 semantics); deep validation adds
  /// the derived-state cross-check there too (and forces checksum
  /// verification first on v4 files).
  bool deep_validate = false;
  /// v4 checksum handling on the mmap path.
  ChecksumMode checksums = ChecksumMode::kLazy;
};

/// What a load cost — the acceptance counters for the zero-copy path.
struct SnapshotLoadStats {
  std::uint32_t version = 0;
  bool mmap_backed = false;
  std::uint64_t file_bytes = 0;
  /// Bytes mapped read-only (the whole file on the mmap path, else 0).
  std::uint64_t bytes_mapped = 0;
  /// Section bytes copied into freshly allocated vectors — 0 on the
  /// mmap path (nothing but the meta strings is duplicated).
  std::uint64_t bytes_copied = 0;
  bool deep_validated = false;
  /// v3 accounting: the payload stayed gap-coded through the load.
  bool compressed = false;
  /// Bytes of the compressed sketch payload (0 for v1/v2).
  std::uint64_t compressed_payload_bytes = 0;
  /// The snapshot carries per-section CRC32C checksums (v4).
  bool checksummed = false;
  /// Checksums were verified DURING the load (stream / eager mmap). A
  /// lazy mmap load leaves this false; see checksums_pending().
  bool checksums_verified = false;
};

/// Snapshot writer knobs (see save()).
struct SnapshotSaveOptions {
  /// Write the compressed-payload layout. Works from any backing: a
  /// compressed store's varint payload is written as-is, a Huffman-
  /// backed one transcodes, a raw one encodes at save time.
  bool compress = false;
  /// Stamp per-section CRC32C checksums into the section table (the v4
  /// format — the default). false reproduces the legacy v2/v3 bytes
  /// exactly.
  bool checksum = true;
};

class SketchStore {
 public:
  /// Runs the sampling phase (identical to run_imm with Engine::kEfficient
  /// and the same options) and freezes the resulting build WITHOUT
  /// flattening it (see from_build). options.k is the build-time query
  /// cap: queries may ask for any k ≤ k_max. The cap is clamped to |V|
  /// (greedy can never return more seeds).
  static SketchStore build(const DiffusionGraph& graph,
                           const ImmOptions& options,
                           std::string workload_label = "");

  /// Zero-copy freeze: takes ownership of the build's storage (the
  /// CompressedPool on a pool-compressed build, the SegmentedPool
  /// arenas on the sharded path, the RRRPool otherwise) and serves
  /// sketches in place. Only bitmap-represented sets are expanded; the
  /// contiguous image is deferred to save(). A compressed build stays
  /// compressed: queries decode on enumerate (see for_each_member).
  static SketchStore from_build(PoolBuild&& build, std::size_t k_max,
                                SketchStoreMeta meta = {});

  /// Freezes a COPY of an existing pool via the contiguous image (test
  /// seam and offline conversions; the caller keeps the pool).
  static SketchStore from_pool(const RRRPool& pool, std::size_t k_max,
                               SketchStoreMeta meta = {});

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return num_vertices_;
  }
  [[nodiscard]] std::uint64_t num_sketches() const noexcept {
    return num_sketches_;
  }
  [[nodiscard]] std::size_t k_max() const noexcept { return k_max_; }
  [[nodiscard]] const SketchStoreMeta& meta() const noexcept { return meta_; }

  /// Member vertices of sketch `s`, ascending — served from the flat
  /// image (owned or mmap'ed) when one exists, otherwise straight from
  /// the owned backing storage (zero-copy). Compressed stores have no
  /// materialized members to span — this throws CheckError there; use
  /// for_each_member (works over every backing) or materialize_flat().
  [[nodiscard]] std::span<const VertexId> sketch(SketchId s) const {
    EIMM_CHECK(!compressed_,
               "sketch() spans are unavailable on a compressed store; "
               "enumerate with for_each_member() or materialize_flat()");
    const std::uint64_t len = sketch_offsets_[s + 1] - sketch_offsets_[s];
    if (flat_) {
      return {sketch_vertices_.data() + sketch_offsets_[s], len};
    }
    return {entry_ptrs_[s], len};
  }

  /// Invokes fn(vertex) for every member of sketch `s` in ascending
  /// order, whatever the backing — the enumeration surface query
  /// kernels use so compressed and raw stores serve identically. May
  /// throw CheckError on a corrupt compressed payload.
  template <typename Fn>
  void for_each_member(SketchId s, Fn&& fn) const {
    if (compressed_) {
      comp_slot(s).for_each(std::forward<Fn>(fn));
      return;
    }
    for (const VertexId v : sketch(s)) fn(v);
  }

  /// Member count of sketch `s` (cheap for every backing).
  [[nodiscard]] std::uint64_t member_count(SketchId s) const noexcept {
    return sketch_offsets_[s + 1] - sketch_offsets_[s];
  }

  /// True when a contiguous CSR image backs sketch() (always after
  /// load(); after build() only once save()/materialize_flat() ran).
  [[nodiscard]] bool flat() const noexcept { return flat_; }

  /// True when the sketch payload is gap-coded (compressed build or v3
  /// snapshot) and queries decode on enumerate.
  [[nodiscard]] bool compressed() const noexcept { return compressed_; }
  /// Bytes of the gap-coded payload (0 when not compressed).
  [[nodiscard]] std::uint64_t compressed_payload_bytes() const noexcept {
    return compressed_ ? comp_offsets_.back() : 0;
  }

  /// Builds the contiguous image from the backing storage (decoding a
  /// compressed payload), switches sketch() to serve from it, and
  /// releases the backing (idempotent; a no-op on loaded uncompressed
  /// stores, which are flat by nature).
  /// NOT safe against concurrent readers: it frees the storage deferred
  /// sketch() spans point into, so call it before publishing the store
  /// to serving threads (or rely on save(), which assembles a transient
  /// payload without touching the backing). Useful to pay the copy once
  /// before repeated save()s.
  void materialize_flat();

  /// Sketches covering vertex `v`, ascending.
  [[nodiscard]] std::span<const SketchId> covering(VertexId v) const noexcept {
    return {node_sketches_.data() + node_offsets_[v],
            node_sketches_.data() + node_offsets_[v + 1]};
  }

  /// Number of sketches covering `v` — exactly the initial value of the
  /// Algorithm 2 vertex-occurrence counter.
  [[nodiscard]] std::uint64_t degree(VertexId v) const noexcept {
    return node_offsets_[v + 1] - node_offsets_[v];
  }

  /// The unconstrained greedy sequence (≤ k_max seeds; shorter when the
  /// pool is exhausted first) and each seed's marginal coverage.
  [[nodiscard]] std::span<const VertexId> default_seeds() const noexcept {
    return default_seeds_;
  }
  [[nodiscard]] std::span<const std::uint64_t> default_marginals()
      const noexcept {
    return default_marginals_;
  }

  /// Owned heap footprint (mmap-served arrays are NOT counted — they are
  /// shared page cache; see mapped_bytes()).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept;
  /// Bytes served from the read-only snapshot mapping (0 unless
  /// mmap-loaded).
  [[nodiscard]] std::uint64_t mapped_bytes() const noexcept {
    return mapping_.size();
  }

  // --- Snapshots (eimm::bin format, magic "EIMMSKS") ---
  /// Writes the page-aligned section-table format: v2 by default, v3
  /// (compressed payload) when options.compress is set.
  void save(std::ostream& os, SnapshotSaveOptions options = {}) const;
  void save_file(const std::string& path,
                 SnapshotSaveOptions options = {}) const;
  /// Compatibility writer for the legacy v1 stream format (exercises the
  /// version-negotiation path; real snapshots should use save()).
  void save_legacy_v1(std::ostream& os) const;
  /// Stream loader: handles v1 and v2 (v2 sections are copied). Always
  /// validates the primary payload.
  static SketchStore load(std::istream& is);
  static SketchStore load_file(const std::string& path,
                               SnapshotLoadOptions options = {});

  /// What the most recent load cost; zeroed on built stores.
  [[nodiscard]] const SnapshotLoadStats& load_stats() const noexcept {
    return load_stats_;
  }

  /// Verifies any deferred v4 section checksums (lazy mmap loads).
  /// Idempotent and safe under concurrency; a no-op when nothing is
  /// pending. Throws bin::FormatError naming the corrupt section — and
  /// stays retryable: a failed verification leaves the store pending.
  /// QueryEngine construction calls this, so a serving path never
  /// answers from unverified bytes.
  void verify_checksums() const;
  /// True while a lazy mmap load still has unverified checksums.
  [[nodiscard]] bool checksums_pending() const noexcept;

  /// Logical equality: same shape, meta, and per-sketch members —
  /// independent of which storage backs each side, so a deferred store
  /// equals its own loaded (flat or mmap'ed) snapshot.
  friend bool operator==(const SketchStore& a, const SketchStore& b);

 private:
  SketchStore() = default;

  /// Derives the inverted index and the default greedy sequence from the
  /// sketch members (build paths and v1 loads — v2 snapshots carry the
  /// derived arrays). Reads through sketch(), so it works over flat and
  /// deferred backings alike.
  void finalize();

  /// Assembles the contiguous payload from sketch() spans (the deferred
  /// flatten, shared by save() and materialize_flat()).
  [[nodiscard]] std::vector<VertexId> assemble_payload() const;

  /// O(sections + offsets + |V| + k) shape checks shared by every load
  /// path; throws on any inconsistency between counts, offsets and
  /// section lengths.
  void validate_structure() const;
  /// O(pool) scans: sketch members strictly ascending and < |V|, node
  /// index entries < num_sketches (stream loads always; mmap on
  /// deep_validate).
  void validate_payload() const;
  /// Recomputes the inverted index and the default greedy sequence from
  /// the primary data and compares them to the loaded arrays
  /// (deep_validate only).
  void validate_derived() const;

  static SketchStore load_v1(std::istream& is);
  /// Shared v2/v3/v4 section-table stream loader (v3/v4-compressed add
  /// the compressed payload + byte-offset sections; v4 verifies the
  /// section checksums inline).
  static SketchStore load_sections_stream(std::istream& is,
                                          std::uint32_t version);
  static SketchStore load_mapped(MappedFile mapping, const std::string& path,
                                 ChecksumMode checksums);
  /// Wires the read-surface spans at the owned vectors.
  void adopt_owned_views();

  /// Slot view of a compressed sketch (compressed_ only): through the
  /// adopted CompressedPool when one backs the store (build path — may
  /// be Huffman-coded), else over the snapshot's varint payload spans.
  [[nodiscard]] CompressedSlot comp_slot(SketchId s) const noexcept {
    if (backing_cpool_.size() > 0) return backing_cpool_.slot(s);
    return CompressedSlot{
        comp_payload_.data() + comp_offsets_[s],
        comp_offsets_[s + 1] - comp_offsets_[s],
        static_cast<std::uint32_t>(sketch_offsets_[s + 1] -
                                   sketch_offsets_[s]),
        nullptr};
  }

  VertexId num_vertices_ = 0;
  std::uint64_t num_sketches_ = 0;
  std::uint64_t k_max_ = 0;
  SketchStoreMeta meta_;
  SnapshotLoadStats load_stats_;

  // Owned storage; a vector stays empty when the snapshot mapping backs
  // the corresponding view instead.
  std::vector<std::uint64_t> sketch_offsets_own_;
  std::vector<VertexId> sketch_vertices_own_;
  std::vector<std::uint64_t> node_offsets_own_;
  std::vector<SketchId> node_sketches_own_;
  std::vector<VertexId> default_seeds_own_;
  std::vector<std::uint64_t> default_marginals_own_;

  // The read surface every accessor serves from: spans into the owned
  // vectors OR into mapping_. Both survive moves of the store — heap and
  // mmap allocations never relocate.
  std::span<const std::uint64_t> sketch_offsets_;  // num_sketches_ + 1
  std::span<const VertexId> sketch_vertices_;      // valid iff flat_
  std::span<const std::uint64_t> node_offsets_;    // num_vertices_ + 1
  std::span<const SketchId> node_sketches_;
  std::span<const VertexId> default_seeds_;
  std::span<const std::uint64_t> default_marginals_;

  bool flat_ = false;
  /// Deferred backing (used iff !flat_ && !compressed_): per-sketch
  /// member pointers into the owned storage below.
  std::vector<const VertexId*> entry_ptrs_;
  RRRPool backing_pool_{0};
  SegmentedPool backing_segments_;
  std::vector<VertexId> bitmap_expansion_;  // expanded bitmap sets only

  /// Compressed backing (used iff compressed_). Build path: the adopted
  /// CompressedPool (varint or Huffman). Snapshot path: varint payload
  /// + byte offsets, owned or served from the mapping; comp_offsets_/
  /// comp_payload_ always point at whichever storage is live.
  bool compressed_ = false;
  CompressedPool backing_cpool_;
  std::vector<std::uint64_t> comp_offsets_own_;
  std::vector<std::uint8_t> comp_payload_own_;
  std::span<const std::uint64_t> comp_offsets_;  // num_sketches_ + 1
  std::span<const std::uint8_t> comp_payload_;

  /// Deferred v4 checksum state of a lazy mmap load: the section list
  /// with expected CRCs, verified once on first demand. Held through a
  /// shared_ptr so the store stays movable (the sections point into
  /// mapping_, whose pages never relocate on move).
  struct PendingChecksums;
  std::shared_ptr<PendingChecksums> pending_checksums_;

  /// Keeps the snapshot pages alive for mmap-backed stores.
  MappedFile mapping_;
};

}  // namespace eimm
