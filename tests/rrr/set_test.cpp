#include "rrr/set.hpp"

#include <gtest/gtest.h>

#include "support/macros.hpp"

namespace eimm {
namespace {

TEST(RRRSet, VectorRepresentationSorts) {
  const RRRSet set = RRRSet::make_vector({5, 1, 3});
  EXPECT_EQ(set.repr(), RRRRepr::kVector);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.vertices(), (std::vector<VertexId>{1, 3, 5}));
}

TEST(RRRSet, VectorContains) {
  const RRRSet set = RRRSet::make_vector({10, 20, 30});
  EXPECT_TRUE(set.contains(20));
  EXPECT_FALSE(set.contains(15));
  EXPECT_FALSE(set.contains(0));
  EXPECT_FALSE(set.contains(31));
}

TEST(RRRSet, BitmapContains) {
  const RRRSet set = RRRSet::make_bitmap({10, 20, 30}, 64);
  EXPECT_EQ(set.repr(), RRRRepr::kBitmap);
  EXPECT_TRUE(set.contains(30));
  EXPECT_FALSE(set.contains(29));
  EXPECT_FALSE(set.contains(63));
  EXPECT_FALSE(set.contains(1000));  // out of bitmap range
}

TEST(RRRSet, BitmapDedups) {
  const RRRSet set = RRRSet::make_bitmap({5, 5, 5}, 16);
  EXPECT_EQ(set.size(), 1u);
}

TEST(RRRSet, BitmapRejectsOutOfRange) {
  EXPECT_THROW(RRRSet::make_bitmap({100}, 50), CheckError);
}

TEST(RRRSet, AdaptiveSmallStaysVector) {
  // 3 members of 1000 vertices, threshold 1/32 -> 31.25: vector.
  const RRRSet set = RRRSet::make_adaptive({1, 2, 3}, 1000);
  EXPECT_EQ(set.repr(), RRRRepr::kVector);
}

TEST(RRRSet, AdaptiveDenseBecomesBitmap) {
  std::vector<VertexId> many;
  for (VertexId v = 0; v < 100; ++v) many.push_back(v);
  const RRRSet set = RRRSet::make_adaptive(many, 1000);  // 100 >= 31.25
  EXPECT_EQ(set.repr(), RRRRepr::kBitmap);
  EXPECT_EQ(set.size(), 100u);
}

TEST(RRRSet, AdaptiveThresholdBoundary) {
  // threshold_fraction=0.5 of 10 vertices -> crossover at size 5.
  const RRRSet small = RRRSet::make_adaptive({0, 1, 2, 3}, 10, 0.5);
  EXPECT_EQ(small.repr(), RRRRepr::kVector);
  const RRRSet large = RRRSet::make_adaptive({0, 1, 2, 3, 4}, 10, 0.5);
  EXPECT_EQ(large.repr(), RRRRepr::kBitmap);
}

TEST(RRRSet, ForEachAscendingBothRepresentations) {
  const std::vector<VertexId> members{2, 40, 41, 90};
  for (const RRRSet& set : {RRRSet::make_vector(members),
                            RRRSet::make_bitmap(members, 128)}) {
    std::vector<VertexId> seen;
    set.for_each([&](VertexId v) { seen.push_back(v); });
    EXPECT_EQ(seen, members);
  }
}

TEST(RRRSet, ToVectorRoundTrip) {
  const std::vector<VertexId> members{7, 13, 99};
  EXPECT_EQ(RRRSet::make_vector(members).to_vector(), members);
  EXPECT_EQ(RRRSet::make_bitmap(members, 128).to_vector(), members);
}

TEST(RRRSet, EmptySet) {
  const RRRSet set = RRRSet::make_vector({});
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(0));
}

TEST(RRRSet, DefaultConstructedIsEmptyVector) {
  const RRRSet set;
  EXPECT_EQ(set.repr(), RRRRepr::kVector);
  EXPECT_TRUE(set.empty());
}

TEST(RRRSet, MemoryFavorsRightRepresentation) {
  // Dense set over a small vertex space: bitmap much smaller than vector.
  std::vector<VertexId> dense;
  const VertexId n = 10000;
  for (VertexId v = 0; v < n; v += 2) dense.push_back(v);
  const RRRSet as_vector = RRRSet::make_vector(dense);
  const RRRSet as_bitmap = RRRSet::make_bitmap(dense, n);
  EXPECT_LT(as_bitmap.memory_bytes(), as_vector.memory_bytes());
  // Sparse set over a big vertex space: vector much smaller than bitmap.
  const RRRSet sparse_vector = RRRSet::make_vector({1, 2, 3});
  const RRRSet sparse_bitmap = RRRSet::make_bitmap({1, 2, 3}, 1u << 20);
  EXPECT_LT(sparse_vector.memory_bytes(), sparse_bitmap.memory_bytes());
}

}  // namespace
}  // namespace eimm
