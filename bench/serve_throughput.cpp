// serve_throughput — queries/sec against one frozen SketchStore.
//
// Builds the store once (the amortized cost the serving story banks on),
// then sweeps thread counts over a fixed mixed query batch: unconstrained
// top-k reads, blacklist queries that re-run the greedy kernel, and
// whitelist queries restricted to a vertex range. Emits a human table
// plus machine-readable BENCH_serve.json (workload, threads, queries/sec,
// build-seconds) via io/json_log.
//
// Extra knobs on top of the common EIMM_* set:
//   EIMM_SERVE_WORKLOAD  store workload (default com-Amazon)
//   EIMM_SERVE_QUERIES   queries per batch (default 256)
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "io/json_log.hpp"
#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"

using namespace eimm;
using namespace eimm::bench;

namespace {

/// The serving mix: ~1/2 cached top-k, ~1/4 blacklist, ~1/4 whitelist.
/// Constrained queries forbid prefixes of the default seed sequence
/// (the "my best influencer declined" scenario) or whitelist a vertex
/// stripe (regional targeting), so every query still returns k seeds
/// worth of greedy work.
std::vector<QueryOptions> make_query_mix(const SketchStore& store,
                                         std::size_t count,
                                         std::size_t k_max) {
  const auto& defaults = store.default_seeds();
  std::vector<QueryOptions> queries(count);
  for (std::size_t i = 0; i < count; ++i) {
    QueryOptions& q = queries[i];
    q.k = 1 + (i % k_max);
    if (i % 4 == 1 && !defaults.empty()) {
      const std::size_t banned = 1 + (i % defaults.size());
      q.forbidden.assign(defaults.begin(),
                         defaults.begin() + static_cast<std::ptrdiff_t>(banned));
    } else if (i % 4 == 3) {
      const VertexId n = store.num_vertices();
      const VertexId begin = static_cast<VertexId>((i * 37) % n);
      const VertexId len = n / 2 > 0 ? n / 2 : 1;
      q.candidates.reserve(len);
      for (VertexId j = 0; j < len; ++j) {
        q.candidates.push_back(static_cast<VertexId>((begin + j) % n));
      }
    }
  }
  return queries;
}

}  // namespace

int main() {
  const BenchConfig config = load_config();
  print_banner("serve_throughput — sketch-store query serving", config);

  const std::string workload =
      env_string("EIMM_SERVE_WORKLOAD").value_or("com-Amazon");
  const auto num_queries = static_cast<std::size_t>(
      env_int("EIMM_SERVE_QUERIES", 256));

  const DiffusionGraph graph =
      load_workload(config, workload, DiffusionModel::kIndependentCascade);
  const ImmOptions options = imm_options(
      config, DiffusionModel::kIndependentCascade, config.max_threads);

  Timer build_timer;
  const SketchStore store = SketchStore::build(graph, options, workload);
  const double build_seconds = build_timer.seconds();
  std::printf(
      "store: %s |V|=%u sketches=%llu k_max=%zu footprint=%.1f MiB "
      "(built in %.3fs)\n\n",
      workload.c_str(), store.num_vertices(),
      static_cast<unsigned long long>(store.num_sketches()), store.k_max(),
      static_cast<double>(store.memory_bytes()) / (1024.0 * 1024.0),
      build_seconds);

  const QueryEngine engine(store);
  const std::vector<QueryOptions> queries =
      make_query_mix(store, num_queries, config.k);

  std::vector<ServeBenchResult> rows;
  std::printf("%8s %14s %12s\n", "threads", "queries/sec", "batch secs");
  for (const int threads : thread_sweep(config.max_threads)) {
    const double seconds = best_seconds(config.reps, [&] {
      Timer timer;
      const auto results = engine.run_batch(queries, threads);
      // Keep the optimizer honest: results must be materialized.
      return results.size() == queries.size() ? timer.seconds()
                                              : timer.seconds() + 1e9;
    });
    const double qps = static_cast<double>(queries.size()) / seconds;
    std::printf("%8d %14.1f %12.4f\n", threads, qps, seconds);

    ServeBenchResult row;
    row.workload = workload;
    row.threads = threads;
    row.queries_per_second = qps;
    row.build_seconds = build_seconds;
    rows.push_back(row);
  }

  const std::string path = write_serve_bench_json_file(
      bench_json_path("BENCH_serve.json"), rows);
  std::printf("\nresults: %s\n", path.c_str());
  return 0;
}
