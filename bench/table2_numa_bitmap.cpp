// Table II reproduction: fraction of Generate_RRRsets core time spent on
// the visited bitmap, original vs NUMA-aware data placement (paper:
// 38-63% improvement on 5 graphs).
//
// In the paper both configurations use the same visited structure; what
// changes is WHERE its pages live (§IV-B): originally wherever the
// master thread faulted them (interleaved => (D-1)/D remote on a D-node
// box), NUMA-aware via mbind on the worker's node. The domain count D
// comes from live numa::topology detection; on single-node hosts —
// where the placement effect cannot be measured at all — the paper's
// 8-domain testbed is modeled instead, and the emitted JSON labels both
// the detected and the modeled count so the cases cannot be confused.
// The placement term itself is modeled either way, in the same spirit
// as Table IV's cache model:
//
//   1. run the real IC sampler at paper-like vertex counts (the visited
//      array must exceed the L2 so accesses reach DRAM) and capture the
//      visited-access stream through the per-thread L1/L2 cache model;
//   2. time the same run untraced for the true compute baseline, and
//      time the per-set O(|V|) clears both configurations pay;
//   3. charge the DRAM-level misses once with the remote-mix latency
//      (original placement) and once with local latency (NUMA-aware),
//      and report each configuration's share of core time.
//
// Because both shares derive from the SAME measured stream, the
// comparison has no run-to-run noise; only the latency model differs.
#include <omp.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "cachesim/cache.hpp"
#include "common.hpp"
#include "numa/topology.hpp"
#include "rrr/generate.hpp"
#include "support/env.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace eimm;

// Latency model (ns), EPYC-class: local DRAM ~90ns, remote ~140ns; the
// original placement is an interleaved mix, (D-1)/D remote on a D-domain
// box. The BFS issues many independent visited probes per window, so
// DRAM-level misses overlap; effective cost = latency / MLP
// (out-of-order cores sustain ~8 outstanding misses).
constexpr double kL1HitNs = 1.0;
constexpr double kL2HitNs = 4.0;
constexpr double kLocalDramNsRaw = 90.0;
constexpr double kRemoteDramNsRaw = 140.0;
constexpr double kMemoryLevelParallelism = 8.0;
constexpr double kLocalDramNs = kLocalDramNsRaw / kMemoryLevelParallelism;

/// Interleaved-placement DRAM cost for a `domains`-node box: a visited
/// page is remote with probability (domains-1)/domains.
double remote_mix_dram_ns(int domains) {
  const double remote_fraction =
      domains > 1 ? static_cast<double>(domains - 1) /
                        static_cast<double>(domains)
                  : 0.0;
  return (remote_fraction * kRemoteDramNsRaw +
          (1.0 - remote_fraction) * kLocalDramNsRaw) /
         kMemoryLevelParallelism;
}

/// Probe feeding visited accesses (1 byte per vertex) into a per-thread
/// cache model.
struct CacheProbe {
  static thread_local CacheHierarchy* hierarchy;
  static void on_visited_access(VertexId v) noexcept {
    if (hierarchy != nullptr) {
      hierarchy->access(reinterpret_cast<const void*>(
                            static_cast<std::uintptr_t>(0x10000000u + v)),
                        1);
    }
  }
};
thread_local CacheHierarchy* CacheProbe::hierarchy = nullptr;

struct StreamProfile {
  CacheStats cache;             // visited-access cache behaviour
  double baseline_core_seconds; // untraced sampler core time
  double clear_core_seconds;    // per-set O(|V|) clears, measured
};

StreamProfile profile(const DiffusionGraph& g, std::size_t sets,
                      std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  StreamProfile p{};

  {  // Untraced pass: the honest compute baseline.
    const Timer wall;
#pragma omp parallel
    {
      SamplerScratch scratch(n);
#pragma omp for schedule(static)
      for (std::size_t i = 0; i < sets; ++i) {
        Xoshiro256 rng = Xoshiro256::for_stream(seed, i);
        const auto root = static_cast<VertexId>(rng.next_bounded(n));
        sample_rrr_ic(g.reverse, root, rng, scratch);
      }
    }
    p.baseline_core_seconds = wall.seconds() * omp_get_max_threads();
  }

  {  // Traced pass: identical stream through the cache model.
#pragma omp parallel
    {
      CacheHierarchy hierarchy;
      CacheProbe::hierarchy = &hierarchy;
      SamplerScratch scratch(n);
#pragma omp for schedule(static)
      for (std::size_t i = 0; i < sets; ++i) {
        Xoshiro256 rng = Xoshiro256::for_stream(seed, i);
        const auto root = static_cast<VertexId>(rng.next_bounded(n));
        sample_rrr_ic<CacheProbe>(g.reverse, root, rng, scratch);
      }
      CacheProbe::hierarchy = nullptr;
#pragma omp critical
      p.cache += hierarchy.stats();
    }
  }

  {  // Clears: both configurations wipe n bytes before every set.
    std::vector<std::uint8_t> buffer(n, 0);
    const Timer t;
    for (std::size_t i = 0; i < sets; ++i) {
      std::fill(buffer.begin(), buffer.end(),
                static_cast<std::uint8_t>(i & 1));
    }
    volatile std::uint8_t sink = buffer[0];
    (void)sink;
    // The clears are spread across the workers in a real run.
    p.clear_core_seconds = t.seconds();
  }
  return p;
}

double structure_share(const StreamProfile& p, double dram_ns) {
  const std::uint64_t l1_hits = p.cache.accesses - p.cache.l1_misses;
  const std::uint64_t l2_hits = p.cache.l1_misses - p.cache.l2_misses;
  const double structure_seconds =
      (static_cast<double>(l1_hits) * kL1HitNs +
       static_cast<double>(l2_hits) * kL2HitNs +
       static_cast<double>(p.cache.l2_misses) * dram_ns) *
          1e-9 +
      p.clear_core_seconds;
  // The untraced baseline already contains the structure's local-latency
  // cost; remove it before composing the modeled share.
  const double in_situ_seconds =
      (static_cast<double>(l1_hits) * kL1HitNs +
       static_cast<double>(l2_hits) * kL2HitNs +
       static_cast<double>(p.cache.l2_misses) * kLocalDramNs) *
          1e-9 +
      p.clear_core_seconds;
  const double rest = std::max(p.baseline_core_seconds - in_situ_seconds,
                               0.05 * p.baseline_core_seconds);
  return structure_seconds / (rest + structure_seconds);
}

}  // namespace

int main() {
  using namespace eimm::bench;

  const BenchConfig config = load_config();
  print_banner(
      "Table II: visited-bitmap core-time share, original vs NUMA-aware",
      config);

  // Consume the live topology: on a real multi-socket host the remote
  // mix uses the detected domain count; single-node hosts (where the
  // placement effect cannot be measured at all) model the paper's
  // 8-domain testbed, and both counts are labelled in the output so the
  // two cases cannot be confused.
  const eimm::NumaTopology& topo = eimm::numa_topology();
  const int detected_domains = topo.num_nodes();
  const int modeled_domains = detected_domains > 1 ? detected_domains : 8;
  const double remote_mix_ns = remote_mix_dram_ns(modeled_domains);
  std::printf("topology: %d NUMA domain(s) detected; latency model uses "
              "%d domain(s)%s\n\n",
              detected_domains, modeled_domains,
              detected_domains > 1 ? " (measured host)"
                                   : " (paper testbed, modeled)");

  // The visited array must clearly exceed the (512 KiB) L2 for placement
  // to matter, as it does on the paper's 0.3M-4M-vertex graphs. 1.2M
  // keeps the R-MAT families (which round to powers of two) above 1M.
  const auto target_nodes = static_cast<double>(
      env_int("EIMM_T2_NODES", 1'200'000));
  constexpr std::size_t kSets = 48;

  const char* datasets[] = {"com-Amazon", "com-YouTube", "soc-Pokec",
                            "com-LJ", "web-Google"};
  const double paper_improvement[] = {38, 38, 63, 60, 53};

  struct Row {
    const char* dataset;
    std::uint64_t nodes;
    double original_share;
    double aware_share;
    double improvement;
  };
  std::vector<Row> rows;

  eimm::AsciiTable table({"Graph", "Nodes", "Original %", "NUMA-aware %",
                          "Improvement %", "Paper improv. %"});
  int row = 0;
  for (const char* name : datasets) {
    const auto spec = eimm::find_workload(name);
    const double scale = target_nodes / spec->base_nodes;
    const eimm::DiffusionGraph g = eimm::make_workload_with_weights(
        name, eimm::DiffusionModel::kIndependentCascade, scale,
        config.rng_seed);
    const StreamProfile p = profile(g, kSets, config.rng_seed);
    const double original = structure_share(p, remote_mix_ns);
    const double aware = structure_share(p, kLocalDramNs);
    const double improvement = 100.0 * (1.0 - aware / original);
    table.new_row()
        .add(name)
        .add(static_cast<std::uint64_t>(g.num_vertices()))
        .add(100.0 * original, 1)
        .add(100.0 * aware, 1)
        .add(improvement, 0)
        .add(paper_improvement[row++], 0);
    rows.push_back({name, g.num_vertices(), original, aware, improvement});
    std::printf("  profiled %-12s: %llu visited accesses, %.1f%% DRAM\n",
                name, static_cast<unsigned long long>(p.cache.accesses),
                100.0 * static_cast<double>(p.cache.l2_misses) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, p.cache.accesses)));
  }
  std::printf("\n");
  table.set_title(
      "Table II (measured sampler stream + modeled placement latency)");
  table.print(std::cout);

  // Machine-readable output, labelled with the REAL domain count so a
  // single-socket run can never masquerade as a NUMA measurement.
  const std::string json_path = bench_json_path("BENCH_table2.json");
  {
    std::ofstream os(json_path);
    eimm::JsonWriter w(os);
    w.begin_object()
        .kv("Bench", "table2_numa_bitmap")
        .kv("NumaDomainsDetected",
            static_cast<std::int64_t>(detected_domains))
        .kv("NumaDomainsModeled", static_cast<std::int64_t>(modeled_domains))
        .kv("PlacementMeasuredOnHost", detected_domains > 1);
    w.key("Results").begin_array();
    for (const Row& r : rows) {
      w.begin_object()
          .kv("Graph", r.dataset)
          .kv("Nodes", r.nodes)
          .kv("OriginalSharePercent", 100.0 * r.original_share)
          .kv("NumaAwareSharePercent", 100.0 * r.aware_share)
          .kv("ImprovementPercent", r.improvement)
          .end_object();
    }
    w.end_array().end_object();
    os << '\n';
  }
  std::printf("\nresults: %s\n", json_path.c_str());

  std::printf(
      "\nShape check: local placement cuts the bitmap's share of core\n"
      "time on every dataset (direction matches the paper everywhere).\n"
      "The latency-only model understates the paper's 38-63%% because it\n"
      "omits coherence and bandwidth-contention effects of remote pages;\n"
      "what is measured vs modeled is documented in the header and\n"
      "EXPERIMENTS.md.\n");
  return 0;
}
