// Microbenchmark of the global-counter design space of Algorithm 2:
//  - "flat"      the shared atomic CounterArray (EfficientIMM's choice:
//                one fetch_add per member, 64-bit granularity),
//  - "sharded"   the NUMA ShardedCounterArray swept over shard counts
//                {1, 2, #domains} — per-domain replicas, updates to the
//                caller's home replica, summed hierarchical arg-max,
//  - "perthread" per-thread private counters + merge (the memory-hungry
//                alternative),
//  - "contended" a single atomic hammered by all threads (worst-case
//                contention reference point).
//
// Each row times the parallel update stream and one arg-max over the
// result, and checks the layout's summed snapshot against the flat
// reference — layouts must agree on VALUES, not just speed (exit 1
// otherwise). Emits a human table plus machine-readable
// BENCH_counters.json via io/json_log.
//
// Extra knobs on top of the common EIMM_* set:
//   EIMM_COUNTER_VERTICES  counter slots (default 1<<16)
//   EIMM_COUNTER_UPDATES   updates per rep (default 1<<20)
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "io/json_log.hpp"
#include "numa/topology.hpp"
#include "runtime/reduction.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace eimm;
using namespace eimm::bench;

namespace {

std::vector<std::uint32_t> random_targets(std::size_t updates,
                                          std::size_t vertices) {
  std::vector<std::uint32_t> targets(updates);
  Xoshiro256 rng(42);
  for (auto& t : targets) {
    t = static_cast<std::uint32_t>(rng.next_bounded(vertices));
  }
  return targets;
}

}  // namespace

int main() {
  const BenchConfig config = load_config();
  print_banner("micro_counters — Algorithm 2 counter layouts", config);

  const auto vertices = static_cast<std::size_t>(
      env_int("EIMM_COUNTER_VERTICES", std::int64_t{1} << 16));
  const auto updates = static_cast<std::size_t>(
      env_int("EIMM_COUNTER_UPDATES", std::int64_t{1} << 20));
  const int domains = numa_topology().num_nodes();
  const auto targets = random_targets(updates, vertices);

  // The flat reference: every layout's summed snapshot must match this
  // after the same update stream.
  CounterArray reference(vertices);
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < targets.size(); ++i) {
    reference.increment(targets[i]);
  }
  const std::vector<std::uint64_t> reference_snapshot = reference.snapshot();

  std::vector<CounterBenchResult> rows;
  AsciiTable table(
      {"Layout", "Shards", "Update s", "Updates/s", "Argmax s", "Match"});

  auto add_row = [&](const std::string& layout, int shards,
                     double update_seconds, double argmax_seconds,
                     bool matches) {
    CounterBenchResult row;
    row.layout = layout;
    row.shards = shards;
    row.threads = config.max_threads;
    row.update_seconds = update_seconds;
    row.updates_per_second =
        update_seconds > 0.0
            ? static_cast<double>(updates) / update_seconds
            : 0.0;
    row.argmax_seconds = argmax_seconds;
    row.matches_flat = matches;
    rows.push_back(row);
    table.new_row()
        .add(layout)
        .add(static_cast<std::uint64_t>(shards))
        .add(update_seconds, 4)
        .add(row.updates_per_second, 0)
        .add(argmax_seconds, 4)
        .add(matches ? "yes" : "NO");
    if (!matches) {
      std::fprintf(stderr,
                   "ERROR: layout %s (shards=%d) diverged from the flat "
                   "counter values\n",
                   layout.c_str(), shards);
    }
  };

  // --- flat shared atomic array ---
  {
    CounterArray counters(vertices);
    const double update_seconds = best_seconds(config.reps, [&] {
      counters.reset();
      Timer timer;
#pragma omp parallel for schedule(static)
      for (std::size_t i = 0; i < targets.size(); ++i) {
        counters.increment(targets[i]);
      }
      return timer.seconds();
    });
    Timer argmax_timer;
    const ArgMaxResult best = parallel_argmax(counters);
    const double argmax_seconds = argmax_timer.seconds();
    add_row("flat", 1, update_seconds, argmax_seconds,
            counters.snapshot() == reference_snapshot &&
                best.value == reference_snapshot[best.index]);
  }

  // --- sharded layout, shards in {1, 2, #domains} (deduplicated) ---
  std::vector<int> shard_counts{1, 2, domains};
  std::sort(shard_counts.begin(), shard_counts.end());
  shard_counts.erase(
      std::unique(shard_counts.begin(), shard_counts.end()),
      shard_counts.end());
  for (const int shards : shard_counts) {
    ShardedCounterArray counters(vertices, shards);
    const double update_seconds = best_seconds(config.reps, [&] {
      counters.reset();
      Timer timer;
#pragma omp parallel
      {
        CounterSlab slab = counters.local();
#pragma omp for schedule(static)
        for (std::size_t i = 0; i < targets.size(); ++i) {
          slab.increment(targets[i]);
        }
      }
      return timer.seconds();
    });
    Timer argmax_timer;
    const ArgMaxResult best = parallel_argmax(counters);
    const double argmax_seconds = argmax_timer.seconds();
    add_row("sharded", shards, update_seconds, argmax_seconds,
            counters.snapshot() == reference_snapshot &&
                best.value == reference_snapshot[best.index]);
  }

  // --- per-thread private counters + merge ---
  {
    std::vector<std::uint64_t> merged(vertices, 0);
    const double update_seconds = best_seconds(config.reps, [&] {
      std::fill(merged.begin(), merged.end(), 0);
      Timer timer;
#pragma omp parallel
      {
        std::vector<std::uint64_t> local(vertices, 0);
#pragma omp for schedule(static)
        for (std::size_t i = 0; i < targets.size(); ++i) {
          local[targets[i]]++;
        }
        for (std::size_t v = 0; v < vertices; ++v) {
          if (local[v] != 0) {
#pragma omp atomic
            merged[v] += local[v];
          }
        }
      }
      return timer.seconds();
    });
    add_row("perthread", 1, update_seconds, 0.0,
            merged == reference_snapshot);
  }

  // --- single contended atomic ---
  {
    CounterArray counters(1);
    const double update_seconds = best_seconds(config.reps, [&] {
      counters.reset();
      Timer timer;
#pragma omp parallel for schedule(static)
      for (std::size_t i = 0; i < targets.size(); ++i) {
        counters.increment(0);
      }
      return timer.seconds();
    });
    add_row("contended", 1, update_seconds, 0.0,
            counters.get(0) == updates);
  }

  std::printf("\n");
  table.set_title("Counter layouts: " + std::to_string(vertices) +
                  " slots, " + std::to_string(updates) + " updates (" +
                  std::to_string(domains) + " NUMA domain(s) detected)");
  table.print(std::cout);

  const std::string path = write_counter_bench_json_file(
      bench_json_path("BENCH_counters.json"), domains, rows);
  std::printf("\nresults: %s\n", path.c_str());

  for (const CounterBenchResult& row : rows) {
    if (!row.matches_flat) return 1;
  }
  return 0;
}
