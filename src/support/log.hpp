// Minimal leveled logger. Intentionally tiny: a single mutex-protected
// stream with compile-away-able levels, enough for the engines to report
// phase progress and for benches to annotate their configuration.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace eimm {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Default: kWarn
/// (library code stays quiet unless something is wrong), overridable via
/// the EIMM_LOG env var ("debug", "info", "warn", "error", "off",
/// case-insensitive; an unrecognized value keeps the default and prints
/// a warning rather than being silently ignored).
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

/// Nanoseconds on the monotonic clock since the process's logging epoch
/// (established on first use). Shared by the log-line timestamps and the
/// obs trace spans so both surfaces agree on "+12.345s".
std::uint64_t monotonic_ns() noexcept;

/// Small dense per-thread ordinal: 0 for the first thread that logs or
/// traces, 1 for the next, and so on. Stable for a thread's lifetime;
/// used for the log-line `T<n>` prefix and trace tid attribution.
int thread_ordinal() noexcept;

/// Emits one line to stderr as
/// `[eimm LEVEL +<seconds>s T<thread>] message`; thread-safe. The
/// timestamp is monotonic_ns() at the call, the thread tag is
/// thread_ordinal().
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace eimm

#define EIMM_LOG(level)                                   \
  if (static_cast<int>(level) <                           \
      static_cast<int>(::eimm::log_threshold())) {        \
  } else                                                  \
    ::eimm::detail::LogMessage(level)

#define EIMM_LOG_DEBUG EIMM_LOG(::eimm::LogLevel::kDebug)
#define EIMM_LOG_INFO EIMM_LOG(::eimm::LogLevel::kInfo)
#define EIMM_LOG_WARN EIMM_LOG(::eimm::LogLevel::kWarn)
#define EIMM_LOG_ERROR EIMM_LOG(::eimm::LogLevel::kError)
