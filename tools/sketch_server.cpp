// sketch_server — long-lived serving daemon over one frozen SketchStore.
//
//   sketch_server --store s.sks --socket /tmp/eimm.sock
//   sketch_server --workload com-Amazon --k 25 --socket /tmp/eimm.sock
//
// Loads (mmap by default — N servers share one page-cache copy of the
// snapshot) or builds a store, binds an AF_UNIX socket and answers the
// wire-protocol verbs (see src/serve/server.hpp) until a client sends
// Shutdown or the process receives SIGINT/SIGTERM. SIGHUP hot-reloads
// the snapshot (checksum-verified before the swap; in-flight queries
// finish on the old store). Talk to it with sketch_client.
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "diffusion/weights.hpp"
#include "io/json_log.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "serve/sketch_store.hpp"
#include "support/failpoint.hpp"
#include "support/rng.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace eimm;

struct ServerCli {
  std::optional<std::string> store_path;
  std::optional<std::string> workload;
  std::string socket_path;
  SnapshotLoadOptions load;
  ServerOptions server;
  // Build-mode knobs (used only with --workload).
  ImmOptions imm;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  double scale = 1.0;
  // Telemetry dump: --metrics writes a final JSON snapshot at shutdown;
  // --metrics-interval additionally rewrites it every N seconds.
  std::optional<std::string> metrics_path;
  int metrics_interval_seconds = 0;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: %s --socket PATH (--store SNAPSHOT | --workload NAME)\n"
      "          [--stream]          (copying loader instead of mmap)\n"
      "          [--deep-validate]   (O(pool) integrity scan at load)\n"
      "          [--k N] [--model IC|LT] [--scale F] [--seed N]\n"
      "          [--max-rrr N] [--threads N]   (build mode only)\n"
      "          [--batch N] [--batch-window-us N] [--timeout-ms N]\n"
      "          [--max-queue N] [--cache N]\n"
      "          [--metrics OUT.json] [--metrics-interval SECONDS]\n",
      argv0);
  std::exit(error != nullptr ? 2 : 0);
}

std::uint64_t parse_uint(const char* argv0, const std::string& arg,
                         const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || value.find('-') != std::string::npos ||
      end == nullptr || *end != '\0' || errno == ERANGE) {
    usage(argv0, (arg + " expects a non-negative integer, got '" + value +
                  "'")
                     .c_str());
  }
  return v;
}

ServerCli parse_cli(int argc, char** argv) {
  ServerCli cli;
  cli.imm.max_rrr_sets = 1u << 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], ("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--store") cli.store_path = next();
    else if (arg == "--workload") cli.workload = next();
    else if (arg == "--socket") cli.socket_path = next();
    else if (arg == "--stream") cli.load.mode = SnapshotLoadMode::kStream;
    else if (arg == "--deep-validate") cli.load.deep_validate = true;
    else if (arg == "--k") {
      cli.imm.k = static_cast<std::size_t>(parse_uint(argv[0], arg, next()));
    } else if (arg == "--model") cli.model = parse_model(next());
    else if (arg == "--scale") cli.scale = std::atof(next().c_str());
    else if (arg == "--seed") {
      cli.imm.rng_seed = parse_uint(argv[0], arg, next());
    } else if (arg == "--max-rrr") {
      cli.imm.max_rrr_sets = parse_uint(argv[0], arg, next());
    } else if (arg == "--threads") {
      cli.imm.threads = static_cast<int>(parse_uint(argv[0], arg, next()));
      cli.server.executor.threads = cli.imm.threads;
    } else if (arg == "--batch") {
      cli.server.executor.max_batch =
          static_cast<std::size_t>(parse_uint(argv[0], arg, next()));
    } else if (arg == "--batch-window-us") {
      cli.server.executor.batch_window =
          std::chrono::microseconds(parse_uint(argv[0], arg, next()));
    } else if (arg == "--timeout-ms") {
      cli.server.request_timeout =
          std::chrono::milliseconds(parse_uint(argv[0], arg, next()));
    } else if (arg == "--max-queue") {
      cli.server.executor.max_queue =
          static_cast<std::size_t>(parse_uint(argv[0], arg, next()));
    } else if (arg == "--cache") {
      cli.server.executor.cache_capacity =
          static_cast<std::size_t>(parse_uint(argv[0], arg, next()));
    } else if (arg == "--metrics") {
      cli.metrics_path = next();
    } else if (arg == "--metrics-interval") {
      cli.metrics_interval_seconds =
          static_cast<int>(parse_uint(argv[0], arg, next()));
    } else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else usage(argv[0], ("unknown option " + arg).c_str());
  }
  if (cli.socket_path.empty()) usage(argv[0], "--socket PATH is required");
  if (!cli.store_path.has_value() && !cli.workload.has_value()) {
    usage(argv[0], "one of --store or --workload is required");
  }
  if (cli.store_path.has_value() && cli.workload.has_value()) {
    usage(argv[0], "--store and --workload are mutually exclusive");
  }
  if (cli.metrics_interval_seconds > 0 && !cli.metrics_path.has_value()) {
    usage(argv[0], "--metrics-interval requires --metrics OUT.json");
  }
  return cli;
}

// stop()/reload_from() take locks and join threads — not
// async-signal-safe — so the handler only writes the signal number down
// a self-pipe; a watcher thread blocking-reads it and does the actual
// work. Compared to the old flag-plus-poll loop this makes SIGTERM
// drain immediately (no 100ms tick) and gives SIGHUP a safe place to
// run a hot reload from.
int g_signal_pipe[2] = {-1, -1};

void handle_signal(int sig) {
  const unsigned char byte = static_cast<unsigned char>(sig);
  // The write end is non-blocking: if the pipe is somehow full the
  // signal is dropped, never deadlocked on. errno must survive the
  // handler untouched.
  const int saved_errno = errno;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
  errno = saved_errno;
}

void install_signal_handlers() {
  if (::pipe2(g_signal_pipe, O_CLOEXEC) != 0) {
    std::perror("pipe2");
    std::exit(1);
  }
  const int flags = ::fcntl(g_signal_pipe[1], F_GETFL);
  ::fcntl(g_signal_pipe[1], F_SETFL, flags | O_NONBLOCK);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = handle_signal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGHUP, &sa, nullptr);
}

/// The kStats surface of a live server, repackaged for the JSON writer.
ServingStatsRecord serving_record(SketchServer& server) {
  const BatchingExecutor::Stats exec = server.executor_stats();
  const QueryCache::Stats qcache = server.cache_stats();
  ServingStatsRecord record;
  record.requests = server.requests_served();
  record.timeouts = server.timeouts();
  record.submitted = exec.submitted;
  record.cache_hits = exec.cache_hits;
  record.rejected = exec.rejected;
  record.batches = exec.batches;
  record.largest_batch = exec.largest_batch;
  record.qcache_hits = qcache.hits;
  record.qcache_misses = qcache.misses;
  record.qcache_evictions = qcache.evictions;
  record.qcache_entries = static_cast<std::uint64_t>(qcache.entries);
  record.generation = server.generation();
  record.reloads = server.registry().reloads();
  record.failed_reloads = server.registry().failed_reloads();
  record.queue_wait_us = exec.queue_wait_us;
  record.batch_size = exec.batch_size;
  record.exec_us = exec.exec_us;
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  const ServerCli cli = parse_cli(argc, argv);
  try {
    std::optional<SketchStore> store;
    if (cli.store_path) {
      store = SketchStore::load_file(*cli.store_path, cli.load);
      const SnapshotLoadStats& stats = store->load_stats();
      std::printf("loaded %s: v%u %s, %.1f MiB mapped, %.1f MiB copied%s\n",
                  cli.store_path->c_str(), stats.version,
                  stats.mmap_backed ? "mmap" : "stream",
                  static_cast<double>(stats.bytes_mapped) / (1024.0 * 1024.0),
                  static_cast<double>(stats.bytes_copied) / (1024.0 * 1024.0),
                  stats.deep_validated ? ", deep-validated" : "");
    } else {
      if (!find_workload(*cli.workload)) {
        std::fprintf(stderr, "error: unknown workload '%s'\n",
                     cli.workload->c_str());
        return 2;
      }
      const DiffusionGraph graph = make_workload_with_weights(
          *cli.workload, cli.model, cli.scale, cli.imm.rng_seed);
      ImmOptions imm = cli.imm;
      imm.model = cli.model;
      store = SketchStore::build(graph, imm, *cli.workload);
      std::printf("built store for %s: |V|=%u sketches=%llu k_max=%zu\n",
                  cli.workload->c_str(), store->num_vertices(),
                  static_cast<unsigned long long>(store->num_sketches()),
                  store->k_max());
    }

    ServerOptions options = cli.server;
    options.socket_path = cli.socket_path;
    if (cli.store_path) {
      // Enables SIGHUP / path-less kReload hot reloads of this snapshot.
      options.snapshot_path = *cli.store_path;
      options.reload_load = cli.load;
    }
    SketchServer server(*store, std::move(options));
    server.start();
    install_signal_handlers();
    std::thread watcher([&server] {
      for (;;) {
        unsigned char sig = 0;
        const ssize_t n = ::read(g_signal_pipe[0], &sig, 1);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0 || sig == 0) return;  // main's shutdown sentinel
        if (sig == SIGHUP) {
          try {
            const std::uint64_t gen = server.reload_from();
            std::printf("reloaded snapshot (generation %llu)\n",
                        static_cast<unsigned long long>(gen));
            std::fflush(stdout);
          } catch (const std::exception& e) {
            std::fprintf(stderr,
                         "reload failed (previous store keeps serving): %s\n",
                         e.what());
          }
          continue;
        }
        server.stop();  // SIGINT / SIGTERM: graceful drain
        return;
      }
    });
    if (const std::size_t armed = fail::armed_count(); armed > 0) {
      std::printf("failpoints armed: %zu\n", armed);
    }
    std::printf("serving on %s (k_max=%zu, cache=%zu, batch=%zu)\n",
                cli.socket_path.c_str(), store->k_max(),
                cli.server.executor.cache_capacity,
                cli.server.executor.max_batch);
    std::fflush(stdout);

    // Periodic metrics dump: rewrite the snapshot file every interval so
    // an operator (or CI) can watch a live server without the wire
    // protocol. The 100ms tick keeps shutdown prompt.
    std::thread metrics_thread;
    if (cli.metrics_path && cli.metrics_interval_seconds > 0) {
      metrics_thread = std::thread([&server, &cli] {
        const auto interval =
            std::chrono::seconds(cli.metrics_interval_seconds);
        auto next_dump = std::chrono::steady_clock::now() + interval;
        while (server.running()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          if (std::chrono::steady_clock::now() < next_dump) continue;
          next_dump += interval;
          try {
            write_server_metrics_json_file(*cli.metrics_path,
                                           obs::snapshot_metrics(),
                                           serving_record(server));
          } catch (const std::exception& e) {
            std::fprintf(stderr, "metrics dump failed: %s\n", e.what());
          }
        }
      });
    }

    server.wait();
    {
      // Wake the watcher if it is still blocked on the pipe (shutdown
      // came over the wire, not from a signal).
      const unsigned char sentinel = 0;
      [[maybe_unused]] const ssize_t n =
          ::write(g_signal_pipe[1], &sentinel, 1);
    }
    watcher.join();
    if (metrics_thread.joinable()) metrics_thread.join();

    const BatchingExecutor::Stats exec = server.executor_stats();
    const QueryCache::Stats cache = server.cache_stats();
    std::printf("served %llu requests in %llu batches (largest %llu); "
                "cache %llu hits / %llu misses\n",
                static_cast<unsigned long long>(server.requests_served()),
                static_cast<unsigned long long>(exec.batches),
                static_cast<unsigned long long>(exec.largest_batch),
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses));
    if (cli.metrics_path) {
      const std::string path = write_server_metrics_json_file(
          *cli.metrics_path, obs::snapshot_metrics(), serving_record(server));
      std::printf("metrics: %s\n", path.c_str());
    }
    return 0;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
