// Minimal JSON parser — just enough to read back the experiment logs the
// library itself writes (io/json_log), so the results-extraction tool
// can mirror the SC'24 artifact's extract_results.py without a third-
// party dependency. Supports the full JSON grammar, including \uXXXX
// escapes (surrogate pairs re-encoded as UTF-8).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace eimm {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

/// A parsed JSON value. Numbers are stored as double (the logs never
/// need 64-bit-exact integers above 2^53).
class JsonValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, double, std::string,
                               JsonArray, JsonObject>;

  JsonValue() : storage_(nullptr) {}
  JsonValue(std::nullptr_t) : storage_(nullptr) {}
  JsonValue(bool b) : storage_(b) {}
  JsonValue(double d) : storage_(d) {}
  JsonValue(std::string s) : storage_(std::move(s)) {}
  JsonValue(JsonArray a) : storage_(std::move(a)) {}
  JsonValue(JsonObject o) : storage_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return storage_.index() == 0; }
  [[nodiscard]] bool is_bool() const { return storage_.index() == 1; }
  [[nodiscard]] bool is_number() const { return storage_.index() == 2; }
  [[nodiscard]] bool is_string() const { return storage_.index() == 3; }
  [[nodiscard]] bool is_array() const { return storage_.index() == 4; }
  [[nodiscard]] bool is_object() const { return storage_.index() == 5; }

  /// Typed accessors; throw CheckError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object field lookup; throws CheckError when absent or not an object.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  [[nodiscard]] bool has(const std::string& key) const;

 private:
  Storage storage_;
};

/// Parses a complete JSON document; throws CheckError (with offset
/// context) on malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

}  // namespace eimm
