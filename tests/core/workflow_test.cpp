// Edge cases of the full IMM workflow: extreme k, tight/loose epsilon,
// degenerate graphs, and option validation — the inputs a downstream
// user will eventually throw at the library.
#include <gtest/gtest.h>

#include <set>

#include "core/imm.hpp"
#include "diffusion/weights.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

ImmOptions options_with(std::size_t k, double epsilon,
                        DiffusionModel model) {
  ImmOptions opt;
  opt.k = k;
  opt.epsilon = epsilon;
  opt.model = model;
  opt.rng_seed = 4242;
  opt.max_rrr_sets = 500'000;
  return opt;
}

TEST(Workflow, KEqualsOne) {
  const auto g = testing::make_weighted_graph(
      gen_barabasi_albert(200, 2, 3), DiffusionModel::kIndependentCascade);
  const auto result = run_efficient_imm(
      g, options_with(1, 0.5, DiffusionModel::kIndependentCascade));
  EXPECT_EQ(result.seeds.size(), 1u);
  EXPECT_GT(result.coverage_fraction, 0.0);
}

TEST(Workflow, KNearlyN) {
  // k close to |V|: the workflow must not loop or overrun; coverage
  // approaches 1 because nearly every vertex gets selected.
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(64, 300, 5), DiffusionModel::kIndependentCascade);
  const auto result = run_efficient_imm(
      g, options_with(60, 0.5, DiffusionModel::kIndependentCascade));
  EXPECT_LE(result.seeds.size(), 60u);
  EXPECT_GT(result.coverage_fraction, 0.95);
  const std::set<VertexId> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), result.seeds.size());
}

TEST(Workflow, SelectionStopsEarlyWhenPoolExhausted) {
  // A graph of isolated pairs: each RRR set has <= 2 vertices, and a few
  // seeds cover everything reachable; the engine must return fewer than
  // k seeds rather than pad with zero-gain vertices.
  std::vector<WeightedEdge> edges;
  for (VertexId v = 0; v + 1 < 40; v += 2) edges.push_back({v, v + 1, 1.0f});
  auto g = testing::make_graph(edges, 40);
  testing::set_uniform_probability(g, 1.0f);
  const auto result = run_efficient_imm(
      g, options_with(39, 0.5, DiffusionModel::kIndependentCascade));
  // 20 pair-heads cover all sets; no more than ~20+ seeds have gain.
  EXPECT_LT(result.seeds.size(), 39u);
  EXPECT_DOUBLE_EQ(result.coverage_fraction, 1.0);
}

TEST(Workflow, TightEpsilonSamplesMore) {
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(300, 1800, 7), DiffusionModel::kIndependentCascade);
  const auto loose = run_efficient_imm(
      g, options_with(5, 0.5, DiffusionModel::kIndependentCascade));
  const auto tight = run_efficient_imm(
      g, options_with(5, 0.15, DiffusionModel::kIndependentCascade));
  EXPECT_GT(tight.num_rrr_sets, loose.num_rrr_sets);
}

TEST(Workflow, LargerEllSamplesMore) {
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(300, 1800, 7), DiffusionModel::kIndependentCascade);
  auto opt_low = options_with(5, 0.5, DiffusionModel::kIndependentCascade);
  opt_low.ell = 1.0;
  auto opt_high = opt_low;
  opt_high.ell = 3.0;
  const auto low = run_efficient_imm(g, opt_low);
  const auto high = run_efficient_imm(g, opt_high);
  EXPECT_GE(high.num_rrr_sets, low.num_rrr_sets);
}

TEST(Workflow, DisconnectedGraphStillWorks) {
  // Two disjoint communities; seeds should land in both.
  std::vector<WeightedEdge> edges = gen_complete(10);
  for (const auto& e : gen_complete(10)) {
    edges.push_back({static_cast<VertexId>(e.src + 10),
                     static_cast<VertexId>(e.dst + 10), 1.0f});
  }
  auto g = testing::make_graph(edges, 20);
  testing::set_uniform_probability(g, 0.8f);
  const auto result = run_efficient_imm(
      g, options_with(2, 0.4, DiffusionModel::kIndependentCascade));
  ASSERT_EQ(result.seeds.size(), 2u);
  const bool one_per_side = (result.seeds[0] < 10) != (result.seeds[1] < 10);
  EXPECT_TRUE(one_per_side) << result.seeds[0] << "," << result.seeds[1];
}

TEST(Workflow, VerticesWithNoInEdgesAreStillSampledAsRoots) {
  // A pure source vertex appears in RRR sets only as its own root; the
  // engine must handle those singleton sets.
  const auto g = testing::make_weighted_graph(
      gen_star(50), DiffusionModel::kIndependentCascade);
  const auto result = run_efficient_imm(
      g, options_with(3, 0.5, DiffusionModel::kIndependentCascade));
  EXPECT_EQ(result.seeds.size(), 3u);
}

TEST(Workflow, InvalidOptionsThrow) {
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(50, 200, 3), DiffusionModel::kIndependentCascade);
  EXPECT_THROW(run_efficient_imm(
                   g, options_with(0, 0.5, DiffusionModel::kIndependentCascade)),
               CheckError);
  EXPECT_THROW(run_efficient_imm(
                   g, options_with(5, 0.0, DiffusionModel::kIndependentCascade)),
               CheckError);
  EXPECT_THROW(run_efficient_imm(
                   g, options_with(5, 1.5, DiffusionModel::kIndependentCascade)),
               CheckError);
  EXPECT_THROW(run_efficient_imm(
                   g, options_with(51, 0.5, DiffusionModel::kIndependentCascade)),
               CheckError);
}

TEST(Workflow, BreakdownAccountsForMostOfTotal) {
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(500, 3000, 11), DiffusionModel::kIndependentCascade);
  const auto result = run_efficient_imm(
      g, options_with(10, 0.5, DiffusionModel::kIndependentCascade));
  const PhaseBreakdown& b = result.breakdown;
  EXPECT_LE(b.sampling_seconds + b.selection_seconds,
            b.total_seconds + 1e-6);
  // Untracked "other" time (martingale bookkeeping, allocation) should
  // be a small share of the run.
  EXPECT_LT(b.other_seconds(), 0.5 * b.total_seconds + 0.01);
}

TEST(Workflow, EstimatedSpreadBoundedByN) {
  const auto g = testing::make_weighted_graph(
      gen_watts_strogatz(300, 3, 0.1, 3), DiffusionModel::kLinearThreshold);
  const auto result = run_efficient_imm(
      g, options_with(5, 0.5, DiffusionModel::kLinearThreshold));
  EXPECT_GE(result.estimated_spread, static_cast<double>(0));
  EXPECT_LE(result.estimated_spread, 300.0);
}

}  // namespace
}  // namespace eimm
