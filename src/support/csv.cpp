#include "support/csv.hpp"

namespace eimm {

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) os_ << ',';
    os_ << escape(f);
    first = false;
  }
  os_ << '\n';
}

void CsvWriter::row(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (const auto f : fields) {
    if (!first) os_ << ',';
    os_ << escape(f);
    first = false;
  }
  os_ << '\n';
}

void CsvWriter::end_row() {
  row(pending_);
  pending_.clear();
}

}  // namespace eimm
