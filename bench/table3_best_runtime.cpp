// Table III reproduction: best runtime of EfficientIMM vs the Ripples
// strategy across all 8 datasets and both diffusion models (k=50,
// ε=0.5). "Best" = minimum over the thread sweep, exactly how the paper
// reports it (each framework at its own best thread count).
//
// Also emits the artifact-style speedup_{ic,lt}.csv files.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "common.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace {

struct BestRun {
  double seconds = 0.0;
  int threads = 0;
};

BestRun best_over_threads(const eimm::DiffusionGraph& graph,
                          const eimm::bench::BenchConfig& config,
                          eimm::DiffusionModel model, eimm::Engine engine) {
  using namespace eimm;
  using namespace eimm::bench;
  BestRun best{1e300, 0};
  for (const int threads : thread_sweep(config.max_threads)) {
    const ImmOptions opt = imm_options(config, model, threads);
    const double seconds = best_seconds(config.reps, [&] {
      return run_imm(graph, opt, engine).breakdown.total_seconds;
    });
    if (seconds < best.seconds) best = {seconds, threads};
  }
  return best;
}

}  // namespace

int main() {
  using namespace eimm;
  using namespace eimm::bench;

  const BenchConfig config = load_config();
  print_banner("Table III: best runtime, EfficientIMM vs Ripples strategy",
               config);

  std::filesystem::create_directories("results");

  for (const DiffusionModel model : {DiffusionModel::kIndependentCascade,
                                     DiffusionModel::kLinearThreshold}) {
    AsciiTable table({"Graph", "Ripples (s)", "EfficientIMM (s)", "Speedup",
                      "Ripples best #T", "EIMM best #T"});
    const std::string model_name(to_string(model));
    const std::string csv_path =
        "results/speedup_" + (model_name == "IC" ? std::string("ic")
                                                 : std::string("lt")) +
        ".csv";
    std::ofstream csv_file(csv_path);
    CsvWriter csv(csv_file);
    csv.row({"Dataset", "Speedup", "EfficientIMM Time (s)",
             "Ripples Time (s)", "Ripples Best #Threads",
             "EfficientIMM Best #Threads"});

    for (const WorkloadSpec& spec : workload_specs()) {
      const DiffusionGraph graph = load_workload(config, spec.name, model);
      const BestRun ripples =
          best_over_threads(graph, config, model, Engine::kRipples);
      const BestRun efficient =
          best_over_threads(graph, config, model, Engine::kEfficient);
      const double speedup = ripples.seconds / efficient.seconds;
      table.new_row()
          .add(spec.name)
          .add(ripples.seconds, 3)
          .add(efficient.seconds, 3)
          .add(format_speedup(speedup))
          .add(ripples.threads)
          .add(efficient.threads);
      csv.cell(spec.name)
          .cell(format_double(speedup, 2))
          .cell(format_double(efficient.seconds, 4))
          .cell(format_double(ripples.seconds, 4))
          .cell(ripples.threads)
          .cell(efficient.threads);
      csv.end_row();
      std::printf("  done: %-12s %s  speedup %.2fx\n", spec.name.c_str(),
                  model_name.c_str(), speedup);
    }
    table.set_title("Table III — " + model_name + " diffusion model");
    std::printf("\n");
    table.print(std::cout);
    std::printf("CSV written to %s\n\n", csv_path.c_str());
  }
  std::printf(
      "Shape check vs paper: EfficientIMM wins on the dense social\n"
      "analogues (paper: 1.6x-12.1x best-vs-best), smallest gains on\n"
      "low-coverage as-Skitter.\n");
  return 0;
}
