// Diffusion-weight assignment, matching §V-A of the paper:
//
//   "we simulate the IC diffusion model by assigning uniformly random
//    [0, 1] edge probabilities. In the linear threshold (LT) diffusion
//    model, weights are adjusted so that the probabilities of either
//    activating a neighbor or activating none sum to one."
//
// Weights live on the *reverse* graph (grouped by destination vertex),
// because both reverse sampling and LT normalization are per-in-edge.
// After assigning on the reverse graph, mirror_weights_to_forward copies
// them to the forward orientation for the Monte-Carlo validator.
#pragma once

#include <cstdint>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"

namespace eimm {

/// IC per paper §V-A: independent uniform [0,1) probability per edge.
void assign_ic_weights_uniform(CSRGraph& reverse, std::uint64_t seed);

/// IC "weighted cascade" variant (Kempe et al.): p(u,v) = 1/indeg(v).
/// Provided because it is the conventional IMM benchmark setting; the
/// paper's uniform scheme produces much denser RRR sets.
void assign_ic_weights_weighted_cascade(CSRGraph& reverse);

/// LT per paper §V-A: for each v, every in-edge gets weight
/// 1/(indeg(v)+1), so Σ_u w(u,v) + P(activate none) = 1.
void assign_lt_weights_normalized(CSRGraph& reverse);

/// LT with random weights, renormalized so in-weights of v sum to
/// indeg/(indeg+1) (same "+1 slot for activating none" convention).
void assign_lt_weights_random(CSRGraph& reverse, std::uint64_t seed);

/// Dispatch on model using the paper's §V-A schemes.
void assign_paper_weights(CSRGraph& reverse, DiffusionModel model,
                          std::uint64_t seed);

/// Copies weights assigned on `reverse` back onto `forward` so that edge
/// (u,v) carries the same weight in both orientations.
void mirror_weights_to_forward(const CSRGraph& reverse, CSRGraph& forward);

}  // namespace eimm
