// The global vertex-occurrence counter of Algorithm 2.
//
// One 64-bit atomic per vertex; increments/decrements are relaxed —
// the counter is a statistic, and the selection loop reads it only after
// an OpenMP barrier, which supplies the necessary ordering. 64-bit width
// matches the paper's observation that `lock incq` confines the locked
// region to one quadword, so concurrent updates to different vertices
// never contend on the same memory word (they may still share a cache
// line; that is the fine-grained-vs-padded trade-off benchmarked in
// bench/micro_counters).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "numa/alloc.hpp"

namespace eimm {

class CounterArray {
 public:
  CounterArray() = default;

  /// `n` counters, zero-initialized, placed with `policy` (the
  /// NUMA-aware engine interleaves; kDefault for unit tests).
  explicit CounterArray(std::size_t n,
                        MemPolicy policy = MemPolicy::kDefault);

  [[nodiscard]] std::size_t size() const noexcept { return array_.size(); }

  void increment(std::size_t i) noexcept {
    array_[i].fetch_add(1, std::memory_order_relaxed);
  }
  void decrement(std::size_t i) noexcept {
    array_[i].fetch_sub(1, std::memory_order_relaxed);
  }
  /// Non-atomic read; callers synchronize via parallel-region barriers.
  [[nodiscard]] std::uint64_t get(std::size_t i) const noexcept {
    return array_[i].load(std::memory_order_relaxed);
  }
  void set(std::size_t i, std::uint64_t v) noexcept {
    array_[i].store(v, std::memory_order_relaxed);
  }

  /// Zeroes all counters (parallel).
  void reset() noexcept;

  /// Copies the counters into a plain vector (for tests/inspection).
  [[nodiscard]] std::vector<std::uint64_t> snapshot() const;

  /// Sum of all counters (serial; test helper).
  [[nodiscard]] std::uint64_t total() const noexcept;

 private:
  NumaArray<std::atomic<std::uint64_t>> array_;
};

}  // namespace eimm
