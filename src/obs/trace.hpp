// Phase-scoped trace spans emitted as Chrome trace-event JSON
// (chrome://tracing / Perfetto "traceEvents" format).
//
// Tracing is off unless `EIMM_TRACE=out.json` is set (or a path is
// installed with set_trace_path); a disabled TraceSpan costs one load
// and one branch. Enabled spans record into per-thread buffers — no
// shared lock on the hot path — and a flush (explicit or the atexit
// hook) merges them, sorts by start time, and writes complete-event
// ("ph":"X") records with microsecond timestamps. Thread attribution
// uses the process-wide dense thread ordinal from support/log, so trace
// tids line up with log-line tids; shard/domain attribution rides in
// per-span integer args.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace eimm::obs {

/// Maximum integer args attached to one span.
inline constexpr std::size_t kMaxSpanArgs = 4;

/// Whether spans record. Seeded from EIMM_TRACE on first use.
[[nodiscard]] bool trace_enabled() noexcept;

/// Installs (or, with "", removes) the trace output path. Enabling
/// registers an atexit flush so a traced process always leaves a valid
/// JSON file behind.
void set_trace_path(const std::string& path);

/// The current output path ("" when tracing is disabled).
[[nodiscard]] std::string trace_path();

/// Number of buffered events across all threads (drops excluded).
[[nodiscard]] std::size_t trace_event_count();

/// Discards all buffered events (test/bench hook).
void reset_trace_events();

/// Writes the buffered events as a Chrome trace-event JSON document.
void write_trace_json(std::ostream& os);

/// Writes the buffered events to trace_path(). Returns the path written,
/// or "" when tracing is disabled. Idempotent: events stay buffered, so
/// a later flush rewrites a superset.
std::string flush_trace();

/// RAII span: records one complete event [construction, destruction).
/// `name` must be a string literal (or otherwise outlive the flush).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept;
  TraceSpan(const char* name, const char* key0, std::int64_t value0) noexcept;
  TraceSpan(const char* name, const char* key0, std::int64_t value0,
            const char* key1, std::int64_t value1) noexcept;
  TraceSpan(const char* name, const char* key0, std::int64_t value0,
            const char* key1, std::int64_t value1, const char* key2,
            std::int64_t value2) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Attaches one more integer arg (ignored when disabled or full).
  void arg(const char* key, std::int64_t value) noexcept;

 private:
  const char* name_ = nullptr;  // nullptr == span inactive
  std::uint64_t start_ns_ = 0;
  std::size_t num_args_ = 0;
  const char* arg_keys_[kMaxSpanArgs] = {};
  std::int64_t arg_values_[kMaxSpanArgs] = {};
};

}  // namespace eimm::obs
