// SNAP-format edge-list I/O.
//
// SNAP files are whitespace-separated "src dst" (optionally "src dst w")
// lines with '#' comment lines. The paper's datasets all use this format;
// users pointing the library at a real SNAP download go through here.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace eimm {

struct EdgeListParseOptions {
  /// Subtract 1 from every vertex id (for 1-based files).
  bool one_based = false;
  /// Default weight when a line has no third column.
  float default_weight = 1.0f;
};

/// Parses an edge-list stream. Throws CheckError on malformed lines
/// (a message includes the line number).
std::vector<WeightedEdge> read_edge_list(std::istream& is,
                                         const EdgeListParseOptions& options = {});

/// Parses an edge-list file by path.
std::vector<WeightedEdge> read_edge_list_file(const std::string& path,
                                              const EdgeListParseOptions& options = {});

/// Writes edges as "src dst weight" lines with a SNAP-style header comment.
void write_edge_list(std::ostream& os, const std::vector<WeightedEdge>& edges,
                     bool with_weights = true);

}  // namespace eimm
