#include "runtime/thread_info.hpp"

#include <omp.h>

namespace eimm {

int max_threads() noexcept { return omp_get_max_threads(); }

int resolve_threads(int requested) noexcept {
  if (requested <= 0) return omp_get_max_threads();
  return requested;
}

ThreadCountScope::ThreadCountScope(int threads)
    : previous_(omp_get_max_threads()) {
  omp_set_num_threads(resolve_threads(threads));
}

ThreadCountScope::~ThreadCountScope() { omp_set_num_threads(previous_); }

}  // namespace eimm
