// Scaling demo: why EfficientIMM exists.
//
// Runs the same influence-maximization problem with the EfficientIMM
// engine and the Ripples-strategy baseline while doubling the thread
// count, printing the speedup curves side by side — a miniature of the
// paper's Fig. 6/7. On any multicore machine the baseline's
// Find_Most_Influential_Set stops scaling while EfficientIMM keeps
// going; that gap is the paper's contribution.
//
// Run: ./scaling_demo [workload] [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/imm.hpp"
#include "runtime/thread_info.hpp"
#include "support/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace eimm;

  const std::string workload = argc > 1 ? argv[1] : "web-Google";
  const double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.25;

  std::printf("== Strong scaling: EfficientIMM vs Ripples strategy ==\n");
  std::printf("Workload: %s analogue (scale %.2f), IC model, k=25\n\n",
              workload.c_str(), scale);
  const DiffusionGraph graph = make_workload_with_weights(
      workload, DiffusionModel::kIndependentCascade, scale, 11);

  ImmOptions options;
  options.k = 25;
  options.epsilon = 0.5;
  options.model = DiffusionModel::kIndependentCascade;

  AsciiTable table({"Threads", "EfficientIMM (s)", "Ripples (s)",
                    "EIMM speedup vs 1T", "Ripples speedup vs 1T"});
  double efficient_base = 0.0;
  double baseline_base = 0.0;
  for (int threads = 1; threads <= max_threads(); threads *= 2) {
    options.threads = threads;
    const double efficient =
        run_efficient_imm(graph, options).breakdown.total_seconds;
    const double baseline =
        run_baseline_imm(graph, options).breakdown.total_seconds;
    if (threads == 1) {
      efficient_base = efficient;
      baseline_base = baseline;
    }
    table.new_row()
        .add(threads)
        .add(efficient, 3)
        .add(baseline, 3)
        .add(format_speedup(efficient_base / efficient))
        .add(format_speedup(baseline_base / baseline));
  }
  table.print(std::cout);
  std::printf(
      "\nBoth engines return identical seed sets (same RNG streams); the\n"
      "difference is purely the parallelization strategy (paper §IV).\n");
  return 0;
}
