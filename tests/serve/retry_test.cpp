// Client resilience: bounded retry with exponential backoff over the
// typed transient-error taxonomy, driven end-to-end through real
// failpoints on a live server — injected admission rejections,
// connection drops, and client-side transport faults. Every recovery
// must converge to the same answer a direct QueryEngine gives.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"
#include "support/failpoint.hpp"
#include "support/macros.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

SketchStore make_store() {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
  ImmOptions options;
  options.k = 6;
  options.max_rrr_sets = 4096;
  return SketchStore::build(g, options, "amazon-retry");
}

fail::Spec error_spec(std::uint64_t percent, std::uint64_t times = 0) {
  fail::Spec spec;
  spec.mode = fail::Mode::kError;
  spec.arg = percent;
  spec.times = times;
  return spec;
}

class RetryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::disarm_all();
    store_ = std::make_unique<SketchStore>(make_store());
    engine_ = std::make_unique<QueryEngine>(*store_);
    ServerOptions options;
    options.socket_path = ::testing::TempDir() + "/eimm_retry_test_" +
                          std::to_string(::testing::UnitTest::GetInstance()
                                             ->random_seed()) +
                          ".sock";
    server_ = std::make_unique<SketchServer>(*store_, options);
    server_->start();
  }

  void TearDown() override {
    fail::disarm_all();
    if (server_) server_->stop();
  }

  std::unique_ptr<SketchStore> store_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<SketchServer> server_;
};

TEST_F(RetryFixture, DefaultClientIsSingleShot) {
  SketchClient client(server_->socket_path());
  fail::arm("serve.admit", error_spec(100));
  EXPECT_THROW((void)client.top_k(3), ServerOverloadedError);
  const RetryStats stats = client.retry_stats();
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.giveups, 1u);
  // Disarmed again, the same connection serves the query.
  fail::disarm_all();
  EXPECT_EQ(client.top_k(3).seeds, engine_->top_k(3).seeds);
}

TEST_F(RetryFixture, ZeroAttemptsIsRejectedUpFront) {
  RetryOptions retry;
  retry.max_attempts = 0;
  EXPECT_THROW(SketchClient(server_->socket_path(), retry), CheckError);
}

TEST_F(RetryFixture, RetriesThroughInjectedAdmissionRejections) {
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff = std::chrono::milliseconds(1);
  SketchClient client(server_->socket_path(), retry);

  // Fires on the first two admissions, then the site goes quiet.
  fail::arm("serve.admit", error_spec(100, 2));
  EXPECT_EQ(client.top_k(4).seeds, engine_->top_k(4).seeds);
  const RetryStats stats = client.retry_stats();
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.giveups, 0u);
  EXPECT_GE(server_->requests_served(), 3u);
}

TEST_F(RetryFixture, ReconnectsThroughInjectedConnectionDrops) {
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff = std::chrono::milliseconds(1);
  SketchClient client(server_->socket_path(), retry);

  // The server hangs up twice without replying; the client must see a
  // TransportError, reconnect, and replay the idempotent query.
  fail::arm("serve.conn.recv", error_spec(100, 2));
  EXPECT_EQ(client.top_k(5).seeds, engine_->top_k(5).seeds);
  const RetryStats stats = client.retry_stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_GE(stats.reconnects, 2u);
  EXPECT_EQ(stats.giveups, 0u);
}

TEST_F(RetryFixture, DroppedReplyIsRetriedToo) {
  RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff = std::chrono::milliseconds(1);
  SketchClient client(server_->socket_path(), retry);

  // The request executes but the reply never leaves the server — the
  // ambiguous case. Queries are idempotent, so replaying is safe.
  fail::arm("serve.conn.send", error_spec(100, 1));
  EXPECT_EQ(client.top_k(2).seeds, engine_->top_k(2).seeds);
  EXPECT_EQ(client.retry_stats().retries, 1u);
}

TEST_F(RetryFixture, ClientSideFaultsAreRetried) {
  RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff = std::chrono::milliseconds(1);
  SketchClient client(server_->socket_path(), retry);

  fail::arm("client.send", error_spec(100, 1));
  fail::arm("client.recv", error_spec(100, 1));
  EXPECT_EQ(client.top_k(3).seeds, engine_->top_k(3).seeds);
  const RetryStats stats = client.retry_stats();
  EXPECT_GE(stats.retries, 2u);
  EXPECT_EQ(stats.giveups, 0u);
}

TEST_F(RetryFixture, ExhaustedAttemptsGiveUpWithTypedError) {
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff = std::chrono::milliseconds(1);
  SketchClient client(server_->socket_path(), retry);

  fail::arm("serve.admit", error_spec(100));  // never recovers
  EXPECT_THROW((void)client.top_k(3), ServerOverloadedError);
  const RetryStats stats = client.retry_stats();
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.giveups, 1u);
  EXPECT_EQ(fail::stats("serve.admit").fires, 3u);
}

TEST_F(RetryFixture, DeadlineBoundsTheWholeRetryLoop) {
  RetryOptions retry;
  retry.max_attempts = 1000;
  retry.initial_backoff = std::chrono::milliseconds(5);
  retry.deadline = std::chrono::milliseconds(150);
  SketchClient client(server_->socket_path(), retry);

  fail::arm("serve.admit", error_spec(100));  // never recovers
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.top_k(3), DeadlineExceededError);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // The loop must stop near the deadline, well before 1000 attempts'
  // worth of backoff.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
  EXPECT_EQ(client.retry_stats().giveups, 1u);
}

TEST_F(RetryFixture, NonTransientServerErrorsAreNotRetried) {
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff = std::chrono::milliseconds(1);
  SketchClient client(server_->socket_path(), retry);

  // k > k_max is a deterministic kError reply — retrying cannot help
  // and must not happen.
  try {
    (void)client.top_k(store_->k_max() + 1);
    FAIL() << "expected CheckError";
  } catch (const TransientError&) {
    FAIL() << "a kError reply must not be typed transient";
  } catch (const CheckError&) {
  }
  const RetryStats stats = client.retry_stats();
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST_F(RetryFixture, InjectedWireFaultSurfacesAsRetryableOverload) {
  RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff = std::chrono::milliseconds(1);
  SketchClient client(server_->socket_path(), retry);

  // serve.wire.decode fires before the request executes, so the server
  // maps it to kOverloaded — honestly retryable.
  fail::arm("serve.wire.decode", error_spec(100, 2));
  EXPECT_EQ(client.top_k(4).seeds, engine_->top_k(4).seeds);
  const RetryStats stats = client.retry_stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.giveups, 0u);
}

TEST_F(RetryFixture, DelayModeAddsLatencyWithoutFailure) {
  SketchClient client(server_->socket_path());  // single-shot
  fail::Spec delay;
  delay.mode = fail::Mode::kDelay;
  delay.arg = 30;  // ms per request admission
  fail::arm("serve.admit", delay);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(client.top_k(3).seeds, engine_->top_k(3).seeds);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
  EXPECT_EQ(client.retry_stats().retries, 0u);
}

}  // namespace
}  // namespace eimm
