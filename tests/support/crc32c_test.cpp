// CRC32C (Castagnoli) — the checksum behind the EIMMSKS v4 section
// table. Checks the published check value, the incremental-seed
// contract, and single-bit sensitivity across word boundaries (the
// property the snapshot fuzz sweep leans on).
#include "support/crc32c.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace eimm {
namespace {

TEST(Crc32c, StandardCheckValue) {
  // RFC 3720 / iSCSI check value for the nine ASCII digits.
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, EmptyInputIsZero) {
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
  EXPECT_EQ(crc32c("", 0), 0u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data =
      "EIMMSKS section payload: incremental chaining must equal the "
      "one-shot CRC of the concatenation, at every split point.";
  const std::uint32_t whole = crc32c(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t head = crc32c(data.data(), split);
    const std::uint32_t both =
        crc32c(data.data() + split, data.size() - split, head);
    EXPECT_EQ(both, whole) << "split at " << split;
  }
}

TEST(Crc32c, SingleBitFlipsChangeTheCrc) {
  // Exactly the corruption class the snapshot loaders must catch: one
  // flipped bit anywhere in a section. Sweep a buffer long enough to
  // cross the slice-by-8 inner-loop boundary several times.
  std::vector<std::uint8_t> buffer(192);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  const std::uint32_t clean = crc32c(buffer.data(), buffer.size());
  for (std::size_t byte = 0; byte < buffer.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buffer[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32c(buffer.data(), buffer.size()), clean)
          << "byte " << byte << " bit " << bit;
      buffer[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
  EXPECT_EQ(crc32c(buffer.data(), buffer.size()), clean);
}

TEST(Crc32c, UnalignedStartMatchesAligned) {
  // The slice-by-8 kernel reads 64-bit words; a misaligned data pointer
  // must still produce the same CRC as a copy at offset zero.
  std::vector<std::uint8_t> raw(64 + 8);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<std::uint8_t>(255 - i);
  }
  const std::uint32_t reference = crc32c(raw.data(), 64);
  for (std::size_t shift = 1; shift < 8; ++shift) {
    std::vector<std::uint8_t> copy(raw.size());
    std::memcpy(copy.data() + shift, raw.data(), 64);
    EXPECT_EQ(crc32c(copy.data() + shift, 64), reference)
        << "shift " << shift;
  }
}

}  // namespace
}  // namespace eimm
