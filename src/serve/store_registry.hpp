// StoreRegistry — epoch-versioned snapshot hot reload for the serving
// layer.
//
// A serving epoch bundles everything a request needs to run: the store,
// its QueryEngine, and a BatchingExecutor. The registry publishes the
// current epoch behind one mutex-guarded shared_ptr; every request takes
// its own reference for the duration of the call, so a reload can swap
// in a new epoch atomically while in-flight queries keep answering from
// the old one. The retired epoch is destroyed (executor drained and
// joined) when its last query drops the reference — a reload never fails
// an in-flight request.
//
// Reloads are all-or-nothing: the replacement store is loaded and
// checksum-verified (v4 snapshots verify eagerly — corrupt bytes are
// rejected BEFORE the swap) and the whole epoch is constructed off-lock.
// Any failure leaves the current epoch serving untouched and bumps
// failed_reloads() instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "serve/executor.hpp"
#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"

namespace eimm {

/// One immutable generation of serving state. Construction order is
/// load-bearing: the engine's ctor verifies any deferred snapshot
/// checksums (so an epoch over corrupt bytes never exists), and the
/// executor starts last / stops first.
struct ServingEpoch {
  ServingEpoch(std::uint64_t gen, std::shared_ptr<const SketchStore> s,
               const ExecutorOptions& exec_options)
      : generation(gen),
        store(std::move(s)),
        engine(*store),
        executor(engine, exec_options) {}

  const std::uint64_t generation;
  const std::shared_ptr<const SketchStore> store;
  QueryEngine engine;
  BatchingExecutor executor;
};

class StoreRegistry {
 public:
  /// Builds generation 1 around an existing store. Throws (via the
  /// engine ctor) if the store carries unverified corrupt checksums.
  StoreRegistry(std::shared_ptr<const SketchStore> store,
                ExecutorOptions exec_options);
  ~StoreRegistry();

  StoreRegistry(const StoreRegistry&) = delete;
  StoreRegistry& operator=(const StoreRegistry&) = delete;

  /// The epoch serving right now. Callers hold the returned reference
  /// across their whole request so a concurrent reload cannot destroy
  /// the state under them. Never null before shutdown().
  [[nodiscard]] std::shared_ptr<ServingEpoch> current() const;

  /// Swaps in a new epoch around `store`. Returns the new epoch; the
  /// old one is retired when its last in-flight reference drops.
  std::shared_ptr<ServingEpoch> reload_store(
      std::shared_ptr<const SketchStore> store);

  /// Loads `path` (checksums verified eagerly), then swaps. Strong
  /// guarantee: on any load/verify failure the current epoch keeps
  /// serving and the exception propagates to the caller.
  std::shared_ptr<ServingEpoch> reload_file(const std::string& path,
                                            SnapshotLoadOptions load = {});

  /// Drains and stops the current epoch's executor (server shutdown).
  void shutdown();

  [[nodiscard]] std::uint64_t generation() const;
  [[nodiscard]] std::uint64_t reloads() const noexcept {
    return reloads_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t failed_reloads() const noexcept {
    return failed_reloads_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<ServingEpoch> swap_in(
      std::shared_ptr<const SketchStore> store);

  const ExecutorOptions exec_options_;
  mutable std::mutex mutex_;
  std::shared_ptr<ServingEpoch> current_;
  std::uint64_t next_generation_ = 1;
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> failed_reloads_{0};
};

}  // namespace eimm
