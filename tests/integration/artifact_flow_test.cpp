// Exercises the whole artifact pipeline in-process: run both engines
// across thread counts -> write the artifact-style JSON logs -> parse
// them back -> compute the best-vs-best speedup exactly the way
// tools/extract_results does. Guards the tooling contract end to end.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/imm.hpp"
#include "io/json_log.hpp"
#include "support/json_parse.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

ExperimentRecord record_from(const ImmResult& result,
                             const std::string& dataset, Engine engine,
                             const ImmOptions& options) {
  ExperimentRecord record;
  record.dataset = dataset;
  record.algorithm = std::string(to_string(engine));
  record.diffusion = std::string(to_string(options.model));
  record.threads = result.threads_used;
  record.k = static_cast<int>(options.k);
  record.epsilon = options.epsilon;
  record.rng_seed = options.rng_seed;
  record.total_seconds = result.breakdown.total_seconds;
  record.sampling_seconds = result.breakdown.sampling_seconds;
  record.selection_seconds = result.breakdown.selection_seconds;
  record.num_rrr_sets = result.num_rrr_sets;
  record.rrr_memory_bytes = result.rrr_memory_bytes;
  record.seeds = result.seeds;
  return record;
}

TEST(ArtifactFlow, LogsRoundTripThroughParserWithBestTimeExtraction) {
  const std::string dir = ::testing::TempDir() + "/eimm_artifact_flow";
  std::filesystem::remove_all(dir);

  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.02, 3);
  ImmOptions options;
  options.k = 5;
  options.model = DiffusionModel::kIndependentCascade;
  options.rng_seed = 13;
  options.max_rrr_sets = 50'000;

  // Strong-scaling sweep for both engines, logged like the artifact.
  for (const Engine engine : {Engine::kEfficient, Engine::kRipples}) {
    for (const int threads : {1, 2, 4}) {
      options.threads = threads;
      const ImmResult result = run_imm(g, options, engine);
      write_experiment_json_file(
          dir, record_from(result, "com-Amazon", engine, options));
    }
  }

  // Re-read every log through the parser and find best-per-algorithm.
  double best_efficient = 1e300;
  double best_ripples = 1e300;
  std::size_t files = 0;
  std::vector<double> first_seeds;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream is(entry.path());
    std::stringstream buffer;
    buffer << is.rdbuf();
    const JsonValue doc = parse_json(buffer.str());
    ++files;
    EXPECT_EQ(doc.at("Input").as_string(), "com-Amazon");
    EXPECT_EQ(doc.at("K").as_number(), 5.0);
    EXPECT_EQ(doc.at("Seeds").as_array().size(), 5u);
    const double total = doc.at("Total").as_number();
    EXPECT_GT(total, 0.0);
    if (doc.at("Algorithm").as_string() == "EfficientIMM") {
      best_efficient = std::min(best_efficient, total);
    } else {
      best_ripples = std::min(best_ripples, total);
    }
    // Every run of every engine must report the identical seed set.
    std::vector<double> seeds;
    for (const JsonValue& s : doc.at("Seeds").as_array()) {
      seeds.push_back(s.as_number());
    }
    if (first_seeds.empty()) first_seeds = seeds;
    EXPECT_EQ(seeds, first_seeds);
  }
  EXPECT_EQ(files, 6u);
  EXPECT_LT(best_efficient, 1e300);
  EXPECT_LT(best_ripples, 1e300);
  const double speedup = best_ripples / best_efficient;
  EXPECT_GT(speedup, 0.0);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace eimm
