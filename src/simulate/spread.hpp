// Forward Monte-Carlo influence-spread estimation σ(S).
//
// This is the ground-truth oracle the paper's correctness rests on: IMM
// promises a (1-1/e-ε)-approximation of σ(S*). The test suite uses these
// estimators to check that the seeds produced by both engines achieve
// competitive spread, and the examples use them to report business
// metrics ("expected reach").
#pragma once

#include <cstdint>
#include <span>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"

namespace eimm {

struct SpreadOptions {
  /// Monte-Carlo repetitions; the standard error is O(n/√samples).
  int num_samples = 1000;
  std::uint64_t rng_seed = 0xD1FFu;
};

/// Expected number of activated vertices under the IC model starting
/// from `seeds`. `forward` must carry IC probabilities. Parallel over
/// samples; deterministic in (seeds, options.rng_seed).
double estimate_spread_ic(const CSRGraph& forward,
                          std::span<const VertexId> seeds,
                          const SpreadOptions& options = {});

/// Expected activations under the LT model; `forward` must carry
/// normalized LT weights. Thresholds are drawn per (sample, vertex).
double estimate_spread_lt(const CSRGraph& forward,
                          std::span<const VertexId> seeds,
                          const SpreadOptions& options = {});

/// Model dispatch.
double estimate_spread(const CSRGraph& forward, DiffusionModel model,
                       std::span<const VertexId> seeds,
                       const SpreadOptions& options = {});

}  // namespace eimm
