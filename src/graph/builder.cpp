#include "graph/builder.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/macros.hpp"

namespace eimm {
namespace {

void compact_vertex_ids(std::vector<WeightedEdge>& edges, VertexId& n_out) {
  std::unordered_map<VertexId, VertexId> remap;
  remap.reserve(edges.size() * 2);
  VertexId next = 0;
  auto map_id = [&](VertexId v) {
    auto [it, inserted] = remap.emplace(v, next);
    if (inserted) ++next;
    return it->second;
  };
  for (auto& e : edges) {
    e.src = map_id(e.src);
    e.dst = map_id(e.dst);
  }
  n_out = next;
}

}  // namespace

CSRGraph build_csr(std::vector<WeightedEdge> edges, VertexId num_vertices,
                   const BuildOptions& options) {
  if (options.symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      const WeightedEdge& e = edges[i];
      edges.push_back({e.dst, e.src, e.weight});
    }
  }
  if (options.remove_self_loops) {
    std::erase_if(edges, [](const WeightedEdge& e) { return e.src == e.dst; });
  }

  VertexId n = num_vertices;
  if (options.compact_ids) {
    compact_vertex_ids(edges, n);
  } else if (n == 0) {
    for (const auto& e : edges) {
      n = std::max({n, static_cast<VertexId>(e.src + 1),
                    static_cast<VertexId>(e.dst + 1)});
    }
  } else {
    for (const auto& e : edges) {
      EIMM_CHECK(e.src < n && e.dst < n,
                 "edge endpoint exceeds declared vertex count");
    }
  }

  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  if (options.dedup) {
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const WeightedEdge& a, const WeightedEdge& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
  }

  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : edges) offsets[e.src + 1]++;
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> targets(edges.size());
  std::vector<float> weights(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    targets[i] = edges[i].dst;
    weights[i] = edges[i].weight;
  }
  return CSRGraph(std::move(offsets), std::move(targets), std::move(weights));
}

DiffusionGraph build_diffusion_graph(std::vector<WeightedEdge> edges,
                                     VertexId num_vertices,
                                     const BuildOptions& options) {
  return DiffusionGraph::from_forward(
      build_csr(std::move(edges), num_vertices, options));
}

}  // namespace eimm
