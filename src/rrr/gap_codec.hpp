// The shared delta-varint gap codec every compressed RRR surface builds
// on (CompressedSet, HuffmanSet, and the pool-scale CompressedPool).
//
// Stream layout, fixed across all producers so their encodings are
// bit-identical: a sorted, deduplicated member list {v0 < v1 < ...}
// becomes the LEB128 varints
//
//   (v0 + 1), (v1 - v0), (v2 - v1), ...
//
// The +1 on the head keeps every emitted varint strictly positive, so a
// zero anywhere in a decoded stream is proof of corruption. Gap bytes of
// social-graph sketches are heavily skewed toward small values — the
// property the optional Huffman second stage (rrr/huffman.hpp) exploits.
//
// Decoding is hardened for on-disk input: read_varint() bounds-checks
// every byte against the stream and caps the shift at 63 bits, throwing
// CheckError (with the byte offset) instead of reading out of bounds or
// shifting past the value width on a corrupt or truncated payload.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "support/macros.hpp"

namespace eimm {

namespace detail {
/// Throws CheckError describing a malformed varint at `pos` (out-of-line
/// so the hot decode loop stays small).
[[noreturn]] void fail_varint(const char* reason, std::size_t pos);
}  // namespace detail

/// Appends `value` as a LEB128 varint (7 payload bits per byte, high bit
/// set on every byte but the last).
inline void write_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Encoded size of `value` as a LEB128 varint (1-10 bytes).
[[nodiscard]] inline std::size_t varint_bytes(std::uint64_t value) noexcept {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

/// Reads one varint at `pos`, advancing it. Throws CheckError (carrying
/// the byte offset) when the stream ends mid-varint or a continuation
/// chain would shift past 64 bits — corrupt payloads fail loudly instead
/// of reading out of bounds.
inline std::uint64_t read_varint(std::span<const std::uint8_t> bytes,
                                 std::size_t& pos) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    if (EIMM_UNLIKELY(pos >= bytes.size())) {
      detail::fail_varint("truncated varint", pos);
    }
    const std::uint8_t byte = bytes[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (EIMM_UNLIKELY(shift > 63)) {
      detail::fail_varint("varint wider than 64 bits", pos);
    }
  }
}

/// Appends the canonical gap stream of `sorted` (strictly ascending,
/// deduplicated) to `out`; returns the bytes appended. The ONE encoder
/// every compressed representation shares, so their streams never drift.
std::size_t append_gap_stream(std::vector<std::uint8_t>& out,
                              std::span<const VertexId> sorted);

/// Encoded size of the gap stream append_gap_stream would emit.
[[nodiscard]] std::uint64_t gap_stream_bytes(std::span<const VertexId> sorted)
    noexcept;

/// Non-owning view of one encoded gap run: `count` members in `bytes`
/// payload bytes at `data`. The enumerate/membership surface compressed
/// pool slots expose to the selection kernels.
struct GapRun {
  const std::uint8_t* data = nullptr;
  std::uint64_t bytes = 0;
  std::uint32_t count = 0;

  /// Invokes fn(vertex) for every member in ascending order. Throws
  /// CheckError on a corrupt stream.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::span<const std::uint8_t> span{data,
                                             static_cast<std::size_t>(bytes)};
    std::size_t pos = 0;
    VertexId current = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t value = read_varint(span, pos);
      current = (i == 0) ? static_cast<VertexId>(value - 1)
                         : static_cast<VertexId>(current + value);
      fn(current);
    }
  }

  /// Membership by linear decode — O(count), early-exiting once the
  /// running value passes `v` (gaps are strictly positive). This is
  /// exactly the codec overhead §IV-C cites; bench/compressed_pool
  /// measures it.
  [[nodiscard]] bool contains(VertexId v) const {
    const std::span<const std::uint8_t> span{data,
                                             static_cast<std::size_t>(bytes)};
    std::size_t pos = 0;
    VertexId current = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t value = read_varint(span, pos);
      current = (i == 0) ? static_cast<VertexId>(value - 1)
                         : static_cast<VertexId>(current + value);
      if (current == v) return true;
      if (current > v) return false;
    }
    return false;
  }

  /// Full decode back to the sorted member list.
  [[nodiscard]] std::vector<VertexId> decode() const;
};

}  // namespace eimm
