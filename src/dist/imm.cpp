#include "dist/imm.hpp"

#include "core/martingale.hpp"
#include "runtime/atomic_counters.hpp"
#include "runtime/partition.hpp"
#include "rrr/pool.hpp"
#include "rrr/sharded.hpp"
#include "seedselect/engine.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

/// Ring-allreduce network volume for one reduction of `words` 64-bit
/// counters over `ranks` processes: each rank sends 2·(R-1)/R of the
/// buffer (reduce-scatter + allgather), so the aggregate wire traffic is
/// 2·(R-1)·words·8 bytes — independent of how dense the sketches are.
std::uint64_t allreduce_bytes(int ranks, std::uint64_t words) {
  if (ranks <= 1) return 0;
  return 2ull * static_cast<std::uint64_t>(ranks - 1) * words * 8ull;
}

/// Wire size of one RRR set shipped as a sorted vertex vector plus a
/// length header (the Ripples-MPI gather format).
std::uint64_t set_wire_bytes(const RRRSet& set) {
  return 8ull + static_cast<std::uint64_t>(set.size()) * sizeof(VertexId);
}

}  // namespace

DistImmResult run_distributed_imm(const DiffusionGraph& graph,
                                  const DistImmOptions& options) {
  EIMM_CHECK(graph.reverse.has_weights(),
             "assign diffusion weights before run_distributed_imm");
  EIMM_CHECK(options.ranks >= 1, "ranks must be >= 1");
  const VertexId n = graph.num_vertices();
  EIMM_CHECK(n >= 2, "graph too small");

  const MartingaleParams params =
      compute_martingale_params(n, options.k, options.epsilon, options.ell);

  RRRPool pool(n);
  std::uint64_t generated = 0;
  bool capped = false;

  // Each simulated rank is one shard of the NUMA-sharded pipeline: the
  // shard slices ARE the rank-owned pool slices, and stream keying by
  // global index keeps pool contents independent of the rank count.
  ShardedConfig shard_config;
  shard_config.shards = options.ranks;
  shard_config.model = options.model;
  shard_config.rng_seed = options.rng_seed;
  shard_config.adaptive_representation = false;  // wire format: raw vectors
  ShardedSampler sampler(graph.reverse, shard_config);

  auto generate_to = [&](std::uint64_t target) {
    target = cap_theta_request(target, options.max_rrr_sets, capped);
    if (target <= generated) return;
    pool.resize(target);
    sampler.generate(pool, generated, target, nullptr);
    generated = target;
  };

  // Selection routes through the same engine as the single-node driver:
  // the cluster simulation only changes where sets LIVE, and the
  // pinned/sharded counter machinery applies on the simulating host too.
  const SelectionEngine selection_engine;
  auto select = [&]() -> SelectionResult {
    SelectionOptions sopt;
    sopt.k = options.k;
    return selection_engine.select(SelectionKernel::kEfficient, pool, sopt);
  };

  // Martingale probing, shared with the single-node driver: the cluster
  // simulation only changes where sets LIVE, never which sets exist.
  const std::uint64_t theta = run_martingale_probing(
      params, generate_to, [&] { return select().coverage_fraction(); });

  const SelectionResult selection = select();

  DistImmResult result;
  result.seeds = selection.seeds;
  result.coverage_fraction = selection.coverage_fraction();
  result.theta = theta;
  result.num_rrr_sets = pool.size();
  result.theta_capped = capped;

  // Block-partition the pool across ranks and charge the strategy.
  const auto ranks = static_cast<std::size_t>(options.ranks);
  const auto rank_slices = split_ranges(pool.size(), ranks);
  result.sets_per_rank.resize(ranks, 0);
  for (std::size_t r = 0; r < ranks; ++r) {
    result.sets_per_rank[r] = rank_slices[r].second - rank_slices[r].first;
  }

  if (options.strategy == DistStrategy::kCounterReduce) {
    // One allreduce for the initial fused counter build, then one per
    // selection round to agree on the global arg-max and the decrements.
    const auto selection_rounds =
        static_cast<std::uint32_t>(result.seeds.size());
    result.comm.rounds = 1 + selection_rounds;
    result.comm.bytes_moved =
        static_cast<std::uint64_t>(result.comm.rounds) *
        allreduce_bytes(options.ranks, n);
    if (options.ranks > 1) {
      result.comm.messages = static_cast<std::uint64_t>(result.comm.rounds) *
                             2ull * (ranks - 1) * ranks;
    }
  } else {
    // Every non-root rank ships its slice of raw sketches to rank 0.
    result.comm.rounds = 1;
    for (std::size_t r = 1; r < ranks; ++r) {
      const auto [lo, hi] = rank_slices[r];
      for (std::size_t i = lo; i < hi; ++i) {
        result.comm.bytes_moved += set_wire_bytes(pool[i]);
      }
      if (hi > lo) ++result.comm.messages;
    }
  }
  return result;
}

}  // namespace eimm
