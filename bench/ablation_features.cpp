// Ablation study over EfficientIMM's four §IV optimizations: kernel
// fusion, adaptive RRR representation, adaptive counter update, and
// dynamic job balancing. Each row disables exactly one feature (leaving
// the rest on) and reports the slowdown relative to the full engine —
// the per-feature attribution the paper motivates qualitatively.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "support/table.hpp"

int main() {
  using namespace eimm;
  using namespace eimm::bench;

  const BenchConfig config = load_config();
  print_banner("Ablation: disable one EfficientIMM feature at a time",
               config);

  struct Ablation {
    std::string name;
    void (*disable)(ImmOptions&);
  };
  const std::vector<Ablation> ablations = {
      {"full EfficientIMM", [](ImmOptions&) {}},
      {"- kernel fusion", [](ImmOptions& o) { o.kernel_fusion = false; }},
      {"- adaptive representation",
       [](ImmOptions& o) { o.adaptive_representation = false; }},
      {"- adaptive counter update",
       [](ImmOptions& o) { o.adaptive_update = false; }},
      {"- dynamic balancing",
       [](ImmOptions& o) { o.dynamic_balance = false; }},
      {"- NUMA awareness", [](ImmOptions& o) { o.numa_aware = false; }},
  };

  for (const char* dataset : {"com-YouTube", "soc-Pokec"}) {
    const DiffusionGraph graph = load_workload(
        config, dataset, DiffusionModel::kIndependentCascade);
    AsciiTable table({"Configuration", "Total (s)", "Sampling (s)",
                      "Selection (s)", "Slowdown vs full"});
    double full_total = 0.0;
    for (const Ablation& ablation : ablations) {
      ImmOptions opt = imm_options(
          config, DiffusionModel::kIndependentCascade, config.max_threads);
      ablation.disable(opt);
      double sampling = 0.0, selection = 0.0;
      const double total = best_seconds(config.reps, [&] {
        const ImmResult r = run_efficient_imm(graph, opt);
        sampling = r.breakdown.sampling_seconds;
        selection = r.breakdown.selection_seconds;
        return r.breakdown.total_seconds;
      });
      if (ablation.name == "full EfficientIMM") full_total = total;
      table.new_row()
          .add(ablation.name)
          .add(total, 4)
          .add(sampling, 4)
          .add(selection, 4)
          .add(format_speedup(total / full_total, 2));
    }
    table.set_title(std::string("Ablation — ") + dataset + " (IC, " +
                    std::to_string(config.max_threads) + " threads)");
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Note: every configuration returns identical seeds (determinism is\n"
      "feature-flag invariant — enforced by the test suite); only the\n"
      "execution cost changes.\n");
  return 0;
}
