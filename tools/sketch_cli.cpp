// sketch_cli — build-once / query-many driver for the serve subsystem.
//
//   sketch_cli build --workload com-Amazon --scale 0.1 --k 25 [--out s.sks]
//   sketch_cli save  --workload com-DBLP --out store.sks
//   sketch_cli load  --store store.sks
//   sketch_cli query --store store.sks --k 10 --forbid 3,17
//   sketch_cli query --store store.sks --k 5 --candidates 1,2,3,4,5
//   sketch_cli query --store store.sks --eval 9,4,12
//   sketch_cli verify store.sks
//
// Verbs:
//   build   construct a store from a workload/graph; --out saves it
//   save    build with a mandatory --out (explicit snapshot step)
//   load    load a snapshot and print its header/summary
//   query   load a snapshot and answer one query (top-k, constrained,
//           or --eval marginal-gain evaluation of given seeds)
//   verify  one-shot integrity check (structure + v4 section checksums
//           + deep payload scan); exits non-zero on corruption with a
//           one-line section/offset diagnostic
//
// Build options mirror imm_cli: --workload NAME | --graph PATH |
// --binary PATH, --scale F, --undirected, --model IC|LT, --k N (the
// build-time query cap), --epsilon F, --threads N, --seed N, --max-rrr N.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "diffusion/weights.hpp"
#include "graph/builder.hpp"
#include "io/binary.hpp"
#include "io/edgelist.hpp"
#include "io/json_log.hpp"
#include "obs/metrics.hpp"
#include "runtime/affinity.hpp"
#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"
#include "support/rng.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace eimm;

struct CliOptions {
  std::string verb;
  std::optional<std::string> graph_path;
  std::optional<std::string> binary_path;
  std::optional<std::string> workload;
  std::optional<std::string> store_path;
  std::optional<std::string> out_path;
  double scale = 1.0;
  bool undirected = false;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  ImmOptions imm;
  std::size_t query_k = 0;
  std::vector<VertexId> candidates;
  std::vector<VertexId> forbidden;
  std::vector<VertexId> eval_seeds;
  SnapshotLoadOptions load;
  SnapshotSaveOptions save;
  std::optional<std::string> metrics_path;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: %s build|save (--workload NAME | --graph PATH | --binary PATH)\n"
      "          [--scale F] [--undirected] [--model IC|LT] [--k N]\n"
      "          [--epsilon F] [--threads N] [--seed N] [--max-rrr N]\n"
      "          [--shards N]   (NUMA sampling shards; default EIMM_SHARDS\n"
      "                          or the detected domain count)\n"
      "          [--counter-shards N]  (NUMA selection-counter replicas;\n"
      "                          default EIMM_COUNTER_SHARDS or the domain\n"
      "                          count; 1 = legacy flat counter)\n"
      "          [--pin auto|none|compact|spread]  (thread pinning;\n"
      "                          default EIMM_PIN, then auto)\n"
      "          [--out PATH]   (--out required for 'save')\n"
      "          [--compress]   (save the snapshot with gap-coded sketch\n"
      "                          payload: v3 format, ~2-4x smaller)\n"
      "          [--no-checksum] (write legacy v2/v3 bytes without the\n"
      "                          v4 per-section CRC32C checksums)\n"
      "       %s load --store PATH [--stream] [--deep-validate]\n"
      "       %s query --store PATH (--k N [--candidates LIST]\n"
      "          [--forbid LIST] | --eval LIST) [--stream] [--deep-validate]\n"
      "          LIST = comma-separated ids\n"
      "       %s verify SNAPSHOT   (one-shot integrity check: structure,\n"
      "          section checksums, payload and derived-state scans;\n"
      "          exits non-zero with a one-line diagnostic on corruption)\n"
      "       --stream forces the copying loader (v2+ snapshots mmap by\n"
      "       default); --deep-validate adds the O(pool) integrity scan\n"
      "       any verb accepts --metrics OUT.json (obs registry snapshot)\n",
      argv0, argv0, argv0, argv0);
  std::exit(error != nullptr ? 2 : 0);
}

std::vector<VertexId> parse_vertex_list(const char* argv0,
                                        const std::string& list) {
  std::vector<VertexId> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string token = list.substr(pos, comma - pos);
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (token.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
        value > std::numeric_limits<VertexId>::max()) {
      usage(argv0, ("vertex list entry '" + token +
                    "' is not a valid vertex id")
                       .c_str());
    }
    out.push_back(static_cast<VertexId>(value));
    pos = comma + 1;
  }
  return out;
}

std::uint64_t parse_uint_option(const char* argv0, const std::string& arg,
                                const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  // strtoull silently wraps "-5" to a huge value; reject signs up front.
  if (value.empty() || value.find('-') != std::string::npos ||
      end == nullptr || *end != '\0' || errno == ERANGE) {
    usage(argv0, (arg + " expects a non-negative integer, got '" + value +
                  "'")
                     .c_str());
  }
  return v;
}

int parse_int_option(const char* argv0, const std::string& arg,
                     const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    usage(argv0,
          (arg + " expects an integer, got '" + value + "'").c_str());
  }
  return static_cast<int>(v);
}

double parse_double_option(const char* argv0, const std::string& arg,
                           const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    usage(argv0, (arg + " expects a number, got '" + value + "'").c_str());
  }
  return v;
}

CliOptions parse_cli(int argc, char** argv) {
  if (argc < 2) usage(argv[0], "missing verb");
  CliOptions options;
  options.verb = argv[1];
  if (options.verb != "build" && options.verb != "save" &&
      options.verb != "load" && options.verb != "query" &&
      options.verb != "verify") {
    if (options.verb == "--help" || options.verb == "-h") usage(argv[0]);
    usage(argv[0], "verb must be build, save, load, query, or verify");
  }
  options.imm.max_rrr_sets = 1u << 20;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], ("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--graph") options.graph_path = next();
    else if (arg == "--binary") options.binary_path = next();
    else if (arg == "--workload") options.workload = next();
    else if (arg == "--store") options.store_path = next();
    else if (arg == "--out") options.out_path = next();
    else if (arg == "--scale") {
      options.scale = parse_double_option(argv[0], arg, next());
    } else if (arg == "--undirected") options.undirected = true;
    else if (arg == "--model") options.model = parse_model(next());
    else if (arg == "--k") {
      const auto k = static_cast<std::size_t>(
          parse_uint_option(argv[0], arg, next()));
      if (k == 0) usage(argv[0], "--k must be positive");
      options.imm.k = k;
      options.query_k = k;
    } else if (arg == "--epsilon") {
      options.imm.epsilon = parse_double_option(argv[0], arg, next());
    } else if (arg == "--threads") {
      options.imm.threads = parse_int_option(argv[0], arg, next());
    } else if (arg == "--shards") {
      const int shards = parse_int_option(argv[0], arg, next());
      if (shards < 1) usage(argv[0], "--shards must be >= 1");
      options.imm.shards = shards;
    } else if (arg == "--counter-shards") {
      const int shards = parse_int_option(argv[0], arg, next());
      if (shards < 1) usage(argv[0], "--counter-shards must be >= 1");
      options.imm.counter_shards = shards;
    } else if (arg == "--pin") {
      bool ok = false;
      const PinMode mode = parse_pin_mode(next(), PinMode::kAuto, &ok);
      if (!ok) usage(argv[0], "--pin must be auto|none|compact|spread");
      set_pin_mode(mode);
    } else if (arg == "--seed") {
      options.imm.rng_seed = parse_uint_option(argv[0], arg, next());
    } else if (arg == "--max-rrr") {
      options.imm.max_rrr_sets = parse_uint_option(argv[0], arg, next());
    } else if (arg == "--candidates") {
      options.candidates = parse_vertex_list(argv[0], next());
    } else if (arg == "--forbid") {
      options.forbidden = parse_vertex_list(argv[0], next());
    } else if (arg == "--eval") {
      options.eval_seeds = parse_vertex_list(argv[0], next());
    } else if (arg == "--stream") {
      options.load.mode = SnapshotLoadMode::kStream;
    } else if (arg == "--compress") {
      options.save.compress = true;
    } else if (arg == "--no-checksum") {
      options.save.checksum = false;
    } else if (arg == "--metrics") {
      options.metrics_path = next();
    } else if (arg == "--deep-validate") {
      options.load.deep_validate = true;
    } else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else if (options.verb == "verify" && !options.store_path &&
             arg.rfind("--", 0) != 0) {
      options.store_path = arg;  // `sketch_cli verify SNAPSHOT`
    } else usage(argv[0], ("unknown option " + arg).c_str());
  }
  return options;
}

void print_store_summary(const SketchStore& store) {
  const SketchStoreMeta& meta = store.meta();
  std::printf("store: workload=%s model=%s seed=%llu epsilon=%.3f\n",
              meta.workload.empty() ? "(unnamed)" : meta.workload.c_str(),
              meta.model.c_str(),
              static_cast<unsigned long long>(meta.rng_seed), meta.epsilon);
  std::printf("       |V|=%u sketches=%llu (theta=%llu%s) k_max=%zu\n",
              store.num_vertices(),
              static_cast<unsigned long long>(store.num_sketches()),
              static_cast<unsigned long long>(meta.theta),
              meta.theta_capped ? ", CAPPED" : "", store.k_max());
  std::printf("       footprint=%.1f MiB, default sequence %zu seeds\n",
              static_cast<double>(store.memory_bytes()) / (1024.0 * 1024.0),
              store.default_seeds().size());
}

void print_query_result(const QueryResult& result) {
  std::printf("seeds:");
  for (const VertexId s : result.seeds) std::printf(" %u", s);
  std::printf("\ncovered %llu / %llu sketches — estimated spread %.1f "
              "(%.2f%% of |V|)\n",
              static_cast<unsigned long long>(result.covered_sketches),
              static_cast<unsigned long long>(result.total_sketches),
              result.estimated_spread, 100.0 * result.coverage_fraction());
}

int run_build(const CliOptions& options) {
  const int sources = (options.graph_path ? 1 : 0) +
                      (options.binary_path ? 1 : 0) +
                      (options.workload ? 1 : 0);
  if (sources != 1) {
    usage("sketch_cli",
          "exactly one of --graph / --binary / --workload required");
  }
  if (options.verb == "save" && !options.out_path) {
    usage("sketch_cli", "'save' requires --out PATH");
  }

  DiffusionGraph graph;
  std::string label;
  if (options.workload) {
    label = *options.workload;
    if (!find_workload(label)) {
      std::fprintf(stderr, "unknown workload '%s'; available:\n",
                   label.c_str());
      for (const auto& spec : workload_specs()) {
        std::fprintf(stderr, "  %s\n", spec.name.c_str());
      }
      return 2;
    }
    // Shared helper, so CLI-built stores match the stores the tests and
    // benches build for the same (workload, model, scale, seed).
    graph = make_workload_with_weights(label, options.model, options.scale,
                                       options.imm.rng_seed);
  } else {
    if (options.graph_path) {
      label = *options.graph_path;
      BuildOptions build;
      build.symmetrize = options.undirected;
      graph = build_diffusion_graph(read_edge_list_file(*options.graph_path),
                                    0, build);
    } else {
      label = *options.binary_path;
      graph = DiffusionGraph::from_forward(
          read_binary_csr_file(*options.binary_path));
    }
    // Same weight salt imm_cli applies to file-based inputs.
    assign_paper_weights(graph.reverse, options.model,
                         hash_combine64(options.imm.rng_seed, 0x77));
  }

  ImmOptions imm = options.imm;
  imm.model = options.model;
  const SketchStore store = SketchStore::build(graph, imm, label);
  print_store_summary(store);

  if (options.out_path) {
    store.save_file(*options.out_path, options.save);
    const unsigned version =
        options.save.checksum ? 4u : (options.save.compress ? 3u : 2u);
    std::printf("saved: %s (v%u%s%s)\n", options.out_path->c_str(), version,
                options.save.compress ? ", compressed" : "",
                options.save.checksum ? ", checksummed" : "");
  }
  return 0;
}

int run_verify(const CliOptions& options) {
  if (!options.store_path) {
    usage("sketch_cli", "'verify' requires a snapshot path");
  }
  // Strongest available check in one pass: the stream loader re-reads
  // every byte, eager checksums verify each v4 section CRC, and the
  // deep scan validates payload plausibility plus derived state.
  SnapshotLoadOptions load = options.load;
  load.mode = SnapshotLoadMode::kStream;
  load.deep_validate = true;
  load.checksums = ChecksumMode::kEager;
  try {
    const SketchStore store =
        SketchStore::load_file(*options.store_path, load);
    const SnapshotLoadStats& stats = store.load_stats();
    std::printf("verify: OK %s (v%u%s%s, %llu sketches over %u nodes, "
                "%.1f MiB)\n",
                options.store_path->c_str(), stats.version,
                stats.compressed ? ", compressed" : "",
                stats.checksummed ? ", checksums verified"
                                  : ", no checksums (pre-v4)",
                static_cast<unsigned long long>(store.num_sketches()),
                store.num_vertices(),
                static_cast<double>(stats.file_bytes) / (1024.0 * 1024.0));
    return 0;
  } catch (const bin::FormatError& e) {
    // One line: FormatError::what() already names the section and the
    // byte offset of the failing read.
    std::fprintf(stderr, "verify: FAIL %s — %s\n",
                 options.store_path->c_str(), e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "verify: FAIL %s — %s\n",
                 options.store_path->c_str(), e.what());
    return 1;
  }
}

int run_load(const CliOptions& options) {
  if (!options.store_path) usage("sketch_cli", "'load' requires --store PATH");
  const SketchStore store =
      SketchStore::load_file(*options.store_path, options.load);
  print_store_summary(store);
  const SnapshotLoadStats& stats = store.load_stats();
  std::printf("load:  v%u %s, %.1f MiB mapped, %.1f MiB copied%s\n",
              stats.version, stats.mmap_backed ? "mmap" : "stream",
              static_cast<double>(stats.bytes_mapped) / (1024.0 * 1024.0),
              static_cast<double>(stats.bytes_copied) / (1024.0 * 1024.0),
              stats.deep_validated ? ", deep-validated" : "");
  if (stats.compressed) {
    std::printf("       compressed payload %.1f MiB (gap-coded)\n",
                static_cast<double>(stats.compressed_payload_bytes) /
                    (1024.0 * 1024.0));
  }
  return 0;
}

int run_query(const CliOptions& options) {
  if (!options.store_path) {
    usage("sketch_cli", "'query' requires --store PATH");
  }
  const SketchStore store =
      SketchStore::load_file(*options.store_path, options.load);
  const QueryEngine engine(store);

  if (!options.eval_seeds.empty()) {
    const MarginalGainResult eval = engine.evaluate(options.eval_seeds);
    std::printf("evaluated %zu seeds: covered %llu / %llu sketches — "
                "estimated spread %.1f\n",
                options.eval_seeds.size(),
                static_cast<unsigned long long>(eval.covered_sketches),
                static_cast<unsigned long long>(eval.total_sketches),
                eval.estimated_spread);
    std::printf("incremental coverage:");
    for (std::size_t i = 0; i < options.eval_seeds.size(); ++i) {
      std::printf(" %u:+%llu", options.eval_seeds[i],
                  static_cast<unsigned long long>(
                      eval.incremental_coverage[i]));
    }
    std::printf("\n");
    return 0;
  }

  if (options.query_k == 0) {
    usage("sketch_cli", "'query' requires --k N or --eval LIST");
  }
  QueryOptions query;
  query.k = options.query_k;
  query.candidates = options.candidates;
  query.forbidden = options.forbidden;
  print_query_result(engine.answer(query));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse_cli(argc, argv);
  try {
    int rc = 0;
    if (options.verb == "build" || options.verb == "save") {
      rc = run_build(options);
    } else if (options.verb == "load") {
      rc = run_load(options);
    } else if (options.verb == "verify") {
      rc = run_verify(options);
    } else {
      rc = run_query(options);
    }
    if (options.metrics_path) {
      const std::string path = write_metrics_json_file(
          *options.metrics_path, obs::snapshot_metrics());
      std::printf("metrics: %s\n", path.c_str());
    }
    return rc;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Bad snapshots and I/O failures must exit with a one-line
    // diagnostic, never an unhandled-exception trace.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
