#include "core/imm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "diffusion/weights.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

ImmOptions small_options(DiffusionModel model, std::size_t k = 5) {
  ImmOptions opt;
  opt.k = k;
  opt.epsilon = 0.5;
  opt.model = model;
  opt.rng_seed = 2024;
  opt.max_rrr_sets = 200'000;
  return opt;
}

TEST(RunImm, StarHubIsFirstSeed) {
  // Star 0 -> {1..n-1} with weighted-cascade weights: every leaf has
  // in-degree 1, so p(hub, leaf) = 1 and every RRR set contains the hub.
  auto g = testing::make_graph(gen_star(64));
  assign_ic_weights_weighted_cascade(g.reverse);
  mirror_weights_to_forward(g.reverse, g.forward);
  const auto result = run_efficient_imm(
      g, small_options(DiffusionModel::kIndependentCascade, 3));
  ASSERT_FALSE(result.seeds.empty());
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_DOUBLE_EQ(result.coverage_fraction, 1.0);
}

TEST(RunImm, SeedsAreDistinctAndInRange) {
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(500, 3000, 7), DiffusionModel::kIndependentCascade);
  const auto result = run_efficient_imm(
      g, small_options(DiffusionModel::kIndependentCascade, 10));
  EXPECT_EQ(result.seeds.size(), 10u);
  std::set<VertexId> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), result.seeds.size());
  for (const VertexId s : result.seeds) EXPECT_LT(s, 500u);
}

TEST(RunImm, ResultFieldsAreConsistent) {
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(300, 1800, 9), DiffusionModel::kIndependentCascade);
  const auto result = run_efficient_imm(
      g, small_options(DiffusionModel::kIndependentCascade));
  EXPECT_GE(result.coverage_fraction, 0.0);
  EXPECT_LE(result.coverage_fraction, 1.0);
  EXPECT_NEAR(result.estimated_spread, 300.0 * result.coverage_fraction,
              1e-9);
  EXPECT_GT(result.num_rrr_sets, 0u);
  EXPECT_TRUE(result.theta_capped || result.num_rrr_sets >= result.theta);
  EXPECT_GT(result.rrr_memory_bytes, 0u);
  EXPECT_GE(result.breakdown.total_seconds,
            result.breakdown.sampling_seconds);
  EXPECT_GE(result.breakdown.sampling_seconds, 0.0);
  EXPECT_GE(result.breakdown.selection_seconds, 0.0);
  EXPECT_GT(result.threads_used, 0);
}

TEST(RunImm, LinearThresholdModelRuns) {
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(400, 2400, 21), DiffusionModel::kLinearThreshold);
  const auto result = run_efficient_imm(
      g, small_options(DiffusionModel::kLinearThreshold));
  EXPECT_EQ(result.seeds.size(), 5u);
  EXPECT_GT(result.num_rrr_sets, 0u);
}

TEST(RunImm, BaselineAndEfficientReturnIdenticalSeeds) {
  // Same RNG streams + deterministic tie-breaks => both engines must
  // produce the same seed set; only their execution strategy differs.
  const auto g = testing::make_weighted_graph(
      gen_barabasi_albert(400, 2, 31), DiffusionModel::kIndependentCascade);
  const auto opt = small_options(DiffusionModel::kIndependentCascade, 8);
  const auto efficient = run_efficient_imm(g, opt);
  const auto baseline = run_baseline_imm(g, opt);
  EXPECT_EQ(efficient.seeds, baseline.seeds);
  EXPECT_DOUBLE_EQ(efficient.coverage_fraction, baseline.coverage_fraction);
  EXPECT_EQ(efficient.num_rrr_sets, baseline.num_rrr_sets);
}

TEST(RunImm, FeatureFlagsDoNotChangeSeeds) {
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(300, 2000, 41), DiffusionModel::kIndependentCascade);
  auto opt = small_options(DiffusionModel::kIndependentCascade, 6);
  const auto reference = run_efficient_imm(g, opt).seeds;

  for (const auto flag_setter :
       {+[](ImmOptions& o) { o.kernel_fusion = false; },
        +[](ImmOptions& o) { o.adaptive_representation = false; },
        +[](ImmOptions& o) { o.adaptive_update = false; },
        +[](ImmOptions& o) { o.dynamic_balance = false; },
        +[](ImmOptions& o) { o.numa_aware = false; }}) {
    auto variant = opt;
    flag_setter(variant);
    EXPECT_EQ(run_efficient_imm(g, variant).seeds, reference);
  }
}

TEST(RunImm, ThetaCapFlagged) {
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(300, 1200, 3), DiffusionModel::kLinearThreshold);
  auto opt = small_options(DiffusionModel::kLinearThreshold);
  opt.max_rrr_sets = 100;  // absurdly low: must cap and flag
  const auto result = run_efficient_imm(g, opt);
  EXPECT_TRUE(result.theta_capped);
  EXPECT_EQ(result.num_rrr_sets, 100u);
}

TEST(RunImm, AdaptiveRepresentationProducesBitmapsOnDenseGraphs) {
  // Watts-Strogatz with p=1 cascade behaviour: sets cover big chunks, so
  // some must cross the bitmap threshold.
  auto g = testing::make_graph(gen_watts_strogatz(1000, 3, 0.1, 13));
  testing::set_uniform_probability(g, 0.9f);
  auto opt = small_options(DiffusionModel::kIndependentCascade, 4);
  const auto result = run_efficient_imm(g, opt);
  EXPECT_GT(result.bitmap_sets, 0u);
  EXPECT_LE(result.bitmap_sets, result.num_rrr_sets);
}

TEST(RunImm, RequiresWeights) {
  auto g = DiffusionGraph::from_forward(CSRGraph({0, 1, 1}, {1}));
  EXPECT_THROW(
      run_efficient_imm(g, small_options(DiffusionModel::kIndependentCascade)),
      CheckError);
}

TEST(RunImm, TinyGraphGuard) {
  auto g = DiffusionGraph::from_forward(CSRGraph({0, 0}, {}));
  g.reverse.ensure_weights();
  EXPECT_THROW(
      run_efficient_imm(g, small_options(DiffusionModel::kIndependentCascade)),
      CheckError);
}

TEST(RunImm, IterationTelemetryIsCoherent) {
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(400, 2400, 13), DiffusionModel::kIndependentCascade);
  const auto result = run_efficient_imm(
      g, small_options(DiffusionModel::kIndependentCascade));
  ASSERT_FALSE(result.iterations.empty());
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const MartingaleIteration& it = result.iterations[i];
    EXPECT_EQ(it.iteration, i + 1);
    EXPECT_GT(it.theta, 0u);
    EXPECT_GE(it.coverage, 0.0);
    EXPECT_LE(it.coverage, 1.0);
    EXPECT_GE(it.lower_bound, 0.0);
    // Only the last executed iteration can be the accepted one.
    if (it.accepted) {
      EXPECT_EQ(i, result.iterations.size() - 1);
    }
  }
  // θ_i grows geometrically across executed probes.
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_GT(result.iterations[i].theta, result.iterations[i - 1].theta);
  }
}

TEST(RunImm, TelemetryIdenticalAcrossEngines) {
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(300, 1800, 19), DiffusionModel::kIndependentCascade);
  const auto opt = small_options(DiffusionModel::kIndependentCascade);
  const auto efficient = run_efficient_imm(g, opt);
  const auto baseline = run_baseline_imm(g, opt);
  ASSERT_EQ(efficient.iterations.size(), baseline.iterations.size());
  for (std::size_t i = 0; i < efficient.iterations.size(); ++i) {
    EXPECT_EQ(efficient.iterations[i].theta, baseline.iterations[i].theta);
    EXPECT_DOUBLE_EQ(efficient.iterations[i].coverage,
                     baseline.iterations[i].coverage);
    EXPECT_EQ(efficient.iterations[i].accepted,
              baseline.iterations[i].accepted);
  }
}

TEST(EngineToString, Names) {
  EXPECT_EQ(to_string(Engine::kEfficient), "EfficientIMM");
  EXPECT_EQ(to_string(Engine::kRipples), "Ripples");
}

}  // namespace
}  // namespace eimm
