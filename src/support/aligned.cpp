#include "support/aligned.hpp"

#include <cstdlib>

namespace eimm {

void* aligned_alloc_bytes(std::size_t bytes, std::size_t alignment) {
  if (bytes == 0) bytes = alignment;
  // std::aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (bytes + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded);
}

void aligned_free(void* p) noexcept { std::free(p); }

}  // namespace eimm
