// Guards the invariant src/dist/imm.hpp documents: the simulated cluster
// only changes where RRR sets LIVE, never which sets exist — so the seed
// sequence must match the single-node EfficientIMM driver exactly. Both
// drivers run the shared run_martingale_probing loop; these tests catch
// any divergence in their generate/select plumbing before it ships
// silently inside bench tables.
#include <gtest/gtest.h>

#include <numeric>

#include "core/imm.hpp"
#include "diffusion/weights.hpp"
#include "dist/imm.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace eimm {
namespace {

DiffusionGraph tiny_graph(DiffusionModel model) {
  DiffusionGraph g =
      build_diffusion_graph(gen_erdos_renyi(300, 1200, 99), 300);
  assign_paper_weights(g.reverse, model, 99);
  mirror_weights_to_forward(g.reverse, g.forward);
  return g;
}

DistImmOptions dist_options(DiffusionModel model) {
  DistImmOptions opt;
  opt.k = 5;
  opt.epsilon = 0.5;
  opt.model = model;
  opt.rng_seed = 11;
  opt.max_rrr_sets = 50'000;
  return opt;
}

ImmOptions core_options(const DistImmOptions& d) {
  ImmOptions opt;
  opt.k = d.k;
  opt.epsilon = d.epsilon;
  opt.ell = d.ell;
  opt.model = d.model;
  opt.rng_seed = d.rng_seed;
  opt.max_rrr_sets = d.max_rrr_sets;
  return opt;
}

class DistImm : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(DistImm, SeedsMatchSingleNodeDriver) {
  const DiffusionGraph g = tiny_graph(GetParam());
  DistImmOptions opt = dist_options(GetParam());
  const ImmResult single = run_efficient_imm(g, core_options(opt));

  for (const DistStrategy strategy :
       {DistStrategy::kCounterReduce, DistStrategy::kSetGather}) {
    opt.strategy = strategy;
    const DistImmResult dist = run_distributed_imm(g, opt);
    EXPECT_EQ(dist.seeds, single.seeds) << to_string(strategy);
    EXPECT_EQ(dist.theta, single.theta) << to_string(strategy);
    EXPECT_EQ(dist.theta_capped, single.theta_capped) << to_string(strategy);
  }
}

TEST_P(DistImm, PartitionCoversPoolAndSingleRankIsFree) {
  const DiffusionGraph g = tiny_graph(GetParam());
  DistImmOptions opt = dist_options(GetParam());
  opt.ranks = 4;
  const DistImmResult dist = run_distributed_imm(g, opt);
  EXPECT_EQ(std::accumulate(dist.sets_per_rank.begin(),
                            dist.sets_per_rank.end(), std::uint64_t{0}),
            dist.num_rrr_sets);
  EXPECT_GT(dist.comm.bytes_moved, 0u);

  opt.ranks = 1;
  const DistImmResult solo = run_distributed_imm(g, opt);
  EXPECT_EQ(solo.comm.bytes_moved, 0u);
  EXPECT_EQ(solo.comm.messages, 0u);
  EXPECT_EQ(solo.seeds, dist.seeds);
}

TEST_P(DistImm, CappedThetaIsReported) {
  const DiffusionGraph g = tiny_graph(GetParam());
  DistImmOptions opt = dist_options(GetParam());
  opt.max_rrr_sets = 64;
  const DistImmResult dist = run_distributed_imm(g, opt);
  EXPECT_TRUE(dist.theta_capped);
  EXPECT_EQ(dist.num_rrr_sets, 64u);
  EXPECT_GT(dist.theta, dist.num_rrr_sets);
  EXPECT_EQ(dist.seeds.size(), opt.k);
}

std::string model_name(const ::testing::TestParamInfo<DiffusionModel>& info) {
  return info.param == DiffusionModel::kIndependentCascade ? "IC" : "LT";
}

INSTANTIATE_TEST_SUITE_P(Models, DistImm,
                         ::testing::Values(
                             DiffusionModel::kIndependentCascade,
                             DiffusionModel::kLinearThreshold),
                         model_name);

}  // namespace
}  // namespace eimm
