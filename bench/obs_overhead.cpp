// obs_overhead — proves the telemetry layer (metrics registry updates +
// trace spans) stays within its cost budget on the end-to-end IMM
// pipeline:
//
//   uninstrumented — EIMM metrics disabled, tracing off.
//   instrumented   — metrics on AND tracing on (spans buffered to a
//                    throwaway file), i.e. the most expensive
//                    observability configuration a user can enable.
//
// Both modes run the identical workload; the bench asserts the seed
// sequences bit-match (telemetry must never perturb results), that the
// instrumented run actually recorded telemetry (non-zero sampling
// counter and trace events — an accidentally-disabled probe would make
// the overhead claim vacuous), and that the relative overhead stays
// under the budget. Exits non-zero on any violation. Emits a human
// table plus machine-readable BENCH_obs_overhead.json.
//
// Extra knobs on top of the common EIMM_* set:
//   EIMM_OBS_WORKLOAD  workload to run (default com-Amazon)
//   EIMM_OBS_BUDGET    allowed overhead fraction (default 0.02)
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/imm.hpp"
#include "io/json_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

using namespace eimm;
using namespace eimm::bench;

int main() {
  const BenchConfig config = load_config();
  print_banner("obs_overhead — telemetry cost on the end-to-end pipeline",
               config);

  const std::string workload =
      env_string("EIMM_OBS_WORKLOAD").value_or("com-Amazon");
  const double budget = env_double("EIMM_OBS_BUDGET", 0.02);
  // Overhead measurement needs min-of-N even when the suite runs reps=1.
  const int reps = std::max(3, config.reps);

  const DiffusionGraph graph =
      load_workload(config, workload, DiffusionModel::kIndependentCascade);
  const ImmOptions options = imm_options(
      config, DiffusionModel::kIndependentCascade, config.max_threads);

  // Interleave the two modes rep by rep (baseline, instrumented,
  // baseline, ...) so slow drift — page-cache warm-up, frequency
  // scaling, a noisy neighbour — hits both minima equally instead of
  // biasing whichever block ran second. One untimed warm-up first.
  const std::string trace_path =
      bench_json_path("BENCH_obs_overhead_trace.json");
  obs::set_trace_path("");
  obs::set_metrics_enabled(false);
  (void)run_efficient_imm(graph, options);

  ImmResult baseline_run;
  ImmResult instrumented_run;
  double uninstrumented_seconds = 0.0;
  double instrumented_seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    obs::set_trace_path("");
    obs::set_metrics_enabled(false);
    baseline_run = run_efficient_imm(graph, options);
    const double off = baseline_run.breakdown.total_seconds;
    if (rep == 0 || off < uninstrumented_seconds) {
      uninstrumented_seconds = off;
    }

    obs::set_metrics_enabled(true);
    obs::set_trace_path(trace_path);
    instrumented_run = run_efficient_imm(graph, options);
    const double on = instrumented_run.breakdown.total_seconds;
    if (rep == 0 || on < instrumented_seconds) instrumented_seconds = on;
  }
  const std::size_t trace_events = obs::trace_event_count();
  const obs::MetricsSnapshot metrics = obs::snapshot_metrics();
  obs::flush_trace();
  obs::set_trace_path("");  // don't re-flush at exit

  const obs::MetricValue* sets = metrics.find("sampling.sets_total");
  const std::uint64_t metric_sets = sets != nullptr ? sets->value : 0;

  ObsOverheadBenchResult row;
  row.workload = workload;
  row.threads = config.max_threads;
  row.reps = reps;
  row.uninstrumented_seconds = uninstrumented_seconds;
  row.instrumented_seconds = instrumented_seconds;
  row.overhead_fraction =
      uninstrumented_seconds > 0.0
          ? (instrumented_seconds - uninstrumented_seconds) /
                uninstrumented_seconds
          : 0.0;
  row.budget_fraction = budget;
  row.trace_events = trace_events;
  row.metric_sets_total = metric_sets;

  const bool seeds_match = baseline_run.seeds == instrumented_run.seeds;
  const bool recorded = metric_sets > 0 && trace_events > 0;
  row.within_budget = row.overhead_fraction <= budget;

  AsciiTable table({"Mode", "Total s", "Overhead", "Trace events",
                    "Metric sets"});
  table.new_row()
      .add("uninstrumented")
      .add(uninstrumented_seconds, 4)
      .add("-")
      .add(std::uint64_t{0})
      .add(std::uint64_t{0});
  table.new_row()
      .add("instrumented")
      .add(instrumented_seconds, 4)
      .add(row.overhead_fraction * 100.0, 2)
      .add(static_cast<std::uint64_t>(trace_events))
      .add(metric_sets);
  table.set_title("Telemetry overhead: " + workload + " (budget " +
                  std::to_string(budget * 100.0) + "%, best of " +
                  std::to_string(reps) + ")");
  table.print(std::cout);

  const std::string path = write_obs_overhead_json_file(
      bench_json_path("BENCH_obs_overhead.json"), {row});
  std::printf("\nresults: %s\ntrace: %s\n", path.c_str(), trace_path.c_str());

  if (!seeds_match) {
    std::fprintf(stderr, "FAIL: instrumented seeds deviate from baseline\n");
    return 1;
  }
  if (!recorded) {
    std::fprintf(stderr,
                 "FAIL: instrumented run recorded no telemetry "
                 "(sets=%llu, trace events=%zu)\n",
                 static_cast<unsigned long long>(metric_sets), trace_events);
    return 1;
  }
  if (!row.within_budget) {
    std::fprintf(stderr, "FAIL: overhead %.2f%% exceeds budget %.2f%%\n",
                 row.overhead_fraction * 100.0, budget * 100.0);
    return 1;
  }
  std::printf("overhead %.2f%% within budget %.2f%%\n",
              row.overhead_fraction * 100.0, budget * 100.0);
  return 0;
}
