#include "workloads/registry.hpp"

#include <gtest/gtest.h>

#include "graph/stats.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

TEST(Registry, AllEightPaperDatasetsPresent) {
  const auto& specs = workload_specs();
  ASSERT_EQ(specs.size(), 8u);
  const std::vector<std::string> expected{
      "com-Amazon", "com-YouTube", "com-DBLP", "com-LJ",
      "soc-Pokec",  "as-Skitter",  "web-Google", "twitter7"};
  for (const auto& name : expected) {
    EXPECT_TRUE(find_workload(name).has_value()) << name;
  }
}

TEST(Registry, SpecsCarryPaperTable1Numbers) {
  const auto amazon = find_workload("com-Amazon");
  ASSERT_TRUE(amazon.has_value());
  EXPECT_EQ(amazon->paper_nodes, 334'863u);
  EXPECT_EQ(amazon->paper_edges, 925'872u);
  EXPECT_NEAR(amazon->paper_avg_coverage, 0.613, 1e-9);
  const auto twitter = find_workload("twitter7");
  ASSERT_TRUE(twitter.has_value());
  EXPECT_EQ(twitter->paper_nodes, 41'652'230u);
}

TEST(Registry, UnknownNameReturnsNullopt) {
  EXPECT_FALSE(find_workload("no-such-graph").has_value());
}

TEST(Registry, MakeUnknownThrows) {
  EXPECT_THROW(make_workload("no-such-graph"), CheckError);
}

TEST(Registry, BadScaleThrows) {
  EXPECT_THROW(make_workload("com-Amazon", 0.0), CheckError);
  EXPECT_THROW(make_workload("com-Amazon", -1.0), CheckError);
}

TEST(Registry, AnaloguesAreNonTrivialAndDeterministic) {
  for (const auto& spec : workload_specs()) {
    const DiffusionGraph a = make_workload(spec.name, 0.01, 9);
    EXPECT_GE(a.num_vertices(), 64u) << spec.name;
    EXPECT_GT(a.num_edges(), a.num_vertices() / 2) << spec.name;
    const DiffusionGraph b = make_workload(spec.name, 0.01, 9);
    EXPECT_EQ(a.forward.targets(), b.forward.targets()) << spec.name;
  }
}

TEST(Registry, ScaleGrowsTheGraph) {
  const auto small = make_workload("com-Amazon", 0.01, 1);
  const auto large = make_workload("com-Amazon", 0.05, 1);
  EXPECT_GT(large.num_vertices(), small.num_vertices());
}

TEST(Registry, WeightsAssignedOnBothOrientations) {
  const auto g = make_workload_with_weights(
      "com-DBLP", DiffusionModel::kIndependentCascade, 0.01, 3);
  EXPECT_TRUE(g.reverse.has_weights());
  EXPECT_TRUE(g.forward.has_weights());
}

TEST(Registry, SkitterAnalogueIsSparseAndGridLike) {
  const auto g = make_workload("as-Skitter", 0.05, 7);
  const auto stats = compute_graph_stats(g.forward, false);
  // Grid + shortcuts: average degree near 4, no heavy hubs.
  EXPECT_LT(stats.avg_out_degree, 6.0);
  EXPECT_LT(stats.max_out_degree, 32u);
}

TEST(Registry, SocialAnaloguesHaveGiantScc) {
  for (const char* name : {"com-Amazon", "com-YouTube", "com-DBLP"}) {
    const auto g = make_workload(name, 0.02, 7);
    const auto stats = compute_graph_stats(g.forward, true);
    EXPECT_GT(stats.largest_scc_fraction, 0.5) << name;
  }
}

TEST(Registry, SocialAnaloguesAreSkewedUnlikeGridAndLattice) {
  // R-MAT families must show hub concentration an order of magnitude
  // above the near-regular lattice/small-world analogues.
  const auto twitter = make_workload("twitter7", 0.01, 5);
  const auto skitter = make_workload("as-Skitter", 0.01, 5);
  const double twitter_skew =
      compute_graph_stats(twitter.forward, false).top1pct_degree_share;
  const double skitter_skew =
      compute_graph_stats(skitter.forward, false).top1pct_degree_share;
  EXPECT_GT(twitter_skew, 0.08);
  EXPECT_GT(twitter_skew, 5.0 * skitter_skew);
}

}  // namespace
}  // namespace eimm
