#include "seedselect/engine.hpp"

#include <omp.h>

#include <algorithm>
#include <vector>

#include "numa/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"
#include "support/macros.hpp"
#include "support/timer.hpp"

namespace eimm {

namespace {

/// Copies a fused base into the flat working layout (the final selection
/// mutates its counter; the base stays valid for reuse in the next
/// martingale round). Same undersized-base contract as
/// ShardedCounterArray::load_base — a silent truncation here would skip
/// the initial build with zeroed tail counters and quietly mis-select.
void copy_base_flat(const CounterArray& base, CounterArray& working) {
  EIMM_CHECK(base.size() >= working.size(),
             "base counter smaller than working layout");
  const std::size_t n = working.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    working.set(i, base.get(i));
  }
}

/// Compiles the whitelist/blacklist into a per-vertex mask; empty when
/// the query is unconstrained (every vertex eligible). Ids must already
/// be validated.
std::vector<std::uint8_t> build_mask(const SketchStore& store,
                                     const QueryOptions& q) {
  if (!q.constrained()) return {};
  const VertexId n = store.num_vertices();
  std::vector<std::uint8_t> mask;
  if (q.candidates.empty()) {
    mask.assign(n, 1);
  } else {
    mask.assign(n, 0);
    for (const VertexId v : q.candidates) mask[v] = 1;
  }
  for (const VertexId v : q.forbidden) mask[v] = 0;
  return mask;
}

}  // namespace

void validate_store_query(const SketchStore& store,
                          const QueryOptions& query) {
  EIMM_CHECK(query.k > 0, "query k must be positive");
  EIMM_CHECK(query.k <= store.k_max(),
             "query k exceeds the store's build-time cap");
  const VertexId n = store.num_vertices();
  for (const VertexId v : query.candidates) {
    EIMM_CHECK(v < n, "candidate vertex out of range");
  }
  for (const VertexId v : query.forbidden) {
    EIMM_CHECK(v < n, "forbidden vertex out of range");
  }
}

SelectionEngine::SelectionEngine(SelectionEngineConfig config)
    : shards_(resolve_counter_shards(config.counter_shards)),
      pin_(effective_pin_mode(config.pin.value_or(resolve_pin_mode()),
                              numa_topology())),
      counter_policy_(config.counter_policy) {}

SelectionResult SelectionEngine::select(SelectionKernel kernel,
                                        const RRRPoolView& pool,
                                        const SelectionOptions& options,
                                        const CounterArray* base,
                                        SelectionWorkspace* workspace) const {
  static const obs::Counter runs = obs::counter("selection.runs_total");
  static const obs::Histogram run_us = obs::histogram("selection.run_us");
  obs::TraceSpan span("selection.select", "kernel",
                      kernel == SelectionKernel::kEfficient ? 0 : 1,
                      "counter_shards", shards_, "sets",
                      static_cast<std::int64_t>(pool.size()));
  Timer timer;
  SelectionResult result = select_impl(kernel, pool, options, base, workspace);
  runs.add();
  run_us.observe(timer.nanos() / 1000);
  return result;
}

SelectionResult SelectionEngine::select_impl(
    SelectionKernel kernel, const RRRPoolView& pool,
    const SelectionOptions& options, const CounterArray* base,
    SelectionWorkspace* workspace) const {
  // Pin the team first: the same OS threads serve every parallel region
  // the kernel spawns, so one pinning pass places the whole phase (and
  // the sharded replicas' first touch lands on the right domains).
  pin_openmp_team(pin_);

  SelectionOptions sopt = options;
  if (workspace != nullptr) sopt.alive_scratch = &workspace->alive_;

  if (kernel == SelectionKernel::kRipples) {
    return ripples_select_t<NullMem>(pool, sopt);
  }

  const VertexId n = pool.num_vertices();
  sopt.counters_prebuilt = base != nullptr;

  if (workspace == nullptr) {
    // One-shot path: a fresh working layout for this call only.
    if (shards_ <= 1) {
      CounterArray working(n, counter_policy_);
      if (base != nullptr) copy_base_flat(*base, working);
      return efficient_select_t<NullMem>(pool, working, sopt);
    }
    ShardedCounterArray working(n, shards_);
    if (base != nullptr) working.load_base(*base);
    return efficient_select_t<NullMem, ShardedCounterArray>(pool, working,
                                                            sopt);
  }

  // Workspace path: allocate the layout once, then reset+reload between
  // calls. A geometry or configuration change (different n, shard count,
  // or placement policy) forces a re-allocation — the probe loop never
  // triggers this, and counter_allocations() exposes it if it happens.
  SelectionWorkspace& ws = *workspace;
  const bool fresh = !ws.allocated_ || ws.n_ != n || ws.shards_ != shards_ ||
                     ws.policy_ != counter_policy_;
  if (fresh) {
    ws.n_ = n;
    ws.shards_ = shards_;
    ws.policy_ = counter_policy_;
    ws.flat_ = shards_ <= 1 ? CounterArray(n, counter_policy_)
                            : CounterArray();
    ws.sharded_ = shards_ > 1 ? ShardedCounterArray(n, shards_)
                              : ShardedCounterArray();
    ws.allocated_ = true;
    ++ws.counter_allocations_;
  } else {
    // Freshly mapped layouts come back zeroed; reused ones must be wiped
    // before the reload (or the kernel's initial build when no fused
    // base exists) so probe round N+1 never sees round N's decrements.
    // With a base present the reload below IS the wipe (copy_base_flat
    // overwrites every flat slot; reload_base fuses wipe+load for the
    // sharded layout), so the explicit reset only covers the no-base
    // case.
    ++ws.reuses_;
    if (base == nullptr) {
      if (shards_ <= 1) {
        ws.flat_.reset();
      } else {
        ws.sharded_.reset();
      }
    }
  }
  if (shards_ <= 1) {
    if (base != nullptr) copy_base_flat(*base, ws.flat_);
    return efficient_select_t<NullMem>(pool, ws.flat_, sopt);
  }
  if (base != nullptr) {
    if (fresh) {
      ws.sharded_.load_base(*base);  // already zeroed by construction
    } else {
      ws.sharded_.reload_base(*base);
    }
  }
  return efficient_select_t<NullMem, ShardedCounterArray>(pool, ws.sharded_,
                                                          sopt);
}

QueryResult SelectionEngine::select(const SketchStore& store,
                                    const QueryOptions& options) const {
  return select_from_store(store, options);
}

QueryResult select_from_store(const SketchStore& store,
                              const QueryOptions& options) {
  const VertexId n = store.num_vertices();
  const std::uint64_t num_sketches = store.num_sketches();
  validate_store_query(store, options);

  QueryResult result;
  result.total_sketches = num_sketches;

  const std::vector<std::uint8_t> mask = build_mask(store, options);

  // Per-query scratch: the Algorithm 2 vertex-occurrence counters (seeded
  // from the inverted-index degrees — the initial counter build is free)
  // and the alive flags over sketches.
  std::vector<std::uint64_t> counters(n);
  for (VertexId v = 0; v < n; ++v) counters[v] = store.degree(v);
  std::vector<std::uint8_t> alive(num_sketches, 1);

  // Whitelisted queries arg-max over the (sorted) candidate list instead
  // of all |V| vertices — a 3-candidate query should cost 3 counter
  // reads per round, not |V|. Ascending order + strict '>' preserves the
  // seedselect lowest-id tie-break.
  std::vector<VertexId> scan_list;
  if (!options.candidates.empty()) {
    scan_list = options.candidates;
    std::sort(scan_list.begin(), scan_list.end());
  }

  const std::size_t rounds =
      std::min<std::size_t>(options.k, static_cast<std::size_t>(n));
  for (std::size_t round = 0; round < rounds; ++round) {
    // Serial arg-max with the seedselect tie-break (lowest id wins):
    // queries parallelize across each other, not within themselves.
    VertexId best_v = 0;
    std::uint64_t best_c = 0;
    auto consider = [&](VertexId v) {
      if (!mask.empty() && mask[v] == 0) return;
      if (counters[v] > best_c) {
        best_c = counters[v];
        best_v = v;
      }
    };
    if (!scan_list.empty()) {
      for (const VertexId v : scan_list) consider(v);
    } else {
      for (VertexId v = 0; v < n; ++v) consider(v);
    }
    if (best_c == 0) break;  // no eligible vertex covers an alive sketch

    result.seeds.push_back(best_v);
    result.marginal_coverage.push_back(best_c);
    result.covered_sketches += best_c;

    // Retire every alive sketch covering the pick, via the inverted
    // index — O(covered sketches), never a scan over all θ.
    for (const SketchId s : store.covering(best_v)) {
      if (alive[s] == 0) continue;
      alive[s] = 0;
      store.for_each_member(s, [&](VertexId u) { --counters[u]; });
    }
  }

  result.estimated_spread =
      static_cast<double>(n) * result.coverage_fraction();
  return result;
}

}  // namespace eimm
