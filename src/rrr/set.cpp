#include "rrr/set.hpp"

#include "support/macros.hpp"

namespace eimm {

RRRSet RRRSet::make_adaptive(std::vector<VertexId> vertices,
                             VertexId num_vertices,
                             double threshold_fraction) {
  const auto threshold = static_cast<std::size_t>(
      threshold_fraction * static_cast<double>(num_vertices));
  if (vertices.size() >= threshold && num_vertices > 0) {
    return make_bitmap(vertices, num_vertices);
  }
  return make_vector(std::move(vertices));
}

RRRSet RRRSet::make_vector(std::vector<VertexId> vertices) {
  std::sort(vertices.begin(), vertices.end());
  RRRSet set;
  set.repr_ = RRRRepr::kVector;
  set.size_ = vertices.size();
  set.vertices_ = std::move(vertices);
  return set;
}

RRRSet RRRSet::make_bitmap(const std::vector<VertexId>& vertices,
                           VertexId num_vertices) {
  RRRSet set;
  set.repr_ = RRRRepr::kBitmap;
  set.bits_ = DynamicBitset(num_vertices);
  for (const VertexId v : vertices) {
    EIMM_CHECK(v < num_vertices, "vertex id out of bitmap range");
    set.bits_.set(v);
  }
  set.size_ = set.bits_.count();  // dedups
  return set;
}

std::vector<VertexId> RRRSet::to_vector() const {
  if (repr_ == RRRRepr::kVector) return vertices_;
  std::vector<VertexId> out;
  out.reserve(size_);
  bits_.for_each_set([&](std::size_t i) { out.push_back(static_cast<VertexId>(i)); });
  return out;
}

}  // namespace eimm
