#include "support/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "support/macros.hpp"

namespace eimm {
namespace {

std::string compact(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  body(w);
  return os.str();
}

TEST(JsonWriter, EmptyObject) {
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_object().end_object(); }),
            "{}");
}

TEST(JsonWriter, SimpleKeyValues) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_object().kv("a", std::int64_t{1}).kv("b", "x").end_object();
  });
  EXPECT_EQ(out, R"({"a": 1,"b": "x"})");
}

TEST(JsonWriter, NestedArray) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_object().key("xs").begin_array();
    w.value(std::int64_t{1}).value(std::int64_t{2});
    w.end_array().end_object();
  });
  EXPECT_EQ(out, R"({"xs": [1,2]})");
}

TEST(JsonWriter, BooleansAndDoubles) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_object().kv("t", true).kv("f", false).kv("d", 1.5).end_object();
  });
  EXPECT_EQ(out, R"({"t": true,"f": false,"d": 1.5})");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_object()
        .kv("nan", std::nan(""))
        .kv("inf", std::numeric_limits<double>::infinity())
        .end_object();
  });
  EXPECT_EQ(out, R"({"nan": null,"inf": null})");
}

TEST(JsonWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, KeyOutsideObjectThrows) {
  std::ostringstream os;
  JsonWriter w(os, false);
  EXPECT_THROW(w.key("oops"), CheckError);
}

TEST(JsonWriter, ValueWithoutKeyInObjectThrows) {
  std::ostringstream os;
  JsonWriter w(os, false);
  w.begin_object();
  EXPECT_THROW(w.value("loose"), CheckError);
}

TEST(JsonWriter, DanglingKeyThrowsOnEndObject) {
  std::ostringstream os;
  JsonWriter w(os, false);
  w.begin_object().key("k");
  EXPECT_THROW(w.end_object(), CheckError);
}

TEST(JsonWriter, MismatchedEndThrows) {
  std::ostringstream os;
  JsonWriter w(os, false);
  w.begin_array();
  EXPECT_THROW(w.end_object(), CheckError);
}

TEST(JsonWriter, PrettyOutputContainsNewlines) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/true);
  w.begin_object().kv("a", std::int64_t{1}).end_object();
  EXPECT_NE(os.str().find('\n'), std::string::npos);
}

TEST(JsonWriter, ArrayOfObjects) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_array();
    w.begin_object().kv("i", std::int64_t{0}).end_object();
    w.begin_object().kv("i", std::int64_t{1}).end_object();
    w.end_array();
  });
  EXPECT_EQ(out, R"([{"i": 0},{"i": 1}])");
}

}  // namespace
}  // namespace eimm
