#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace eimm {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleValue) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, Endpoints) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, UnsortedInputHandled) {
  std::vector<double> v{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(median(v), 5.0);
}

TEST(Percentile, ClampsOutOfRangeP) {
  std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 200.0), 3.0);
}

}  // namespace
}  // namespace eimm
