// Property and negative-path coverage for the NUMA-sharded sampling
// pipeline: plan partitioning invariants, arena staging, and the merge's
// bit-identity with the serial reference under degenerate shapes —
// empty shards, one giant shard, shard count > thread count > node
// count, and oversubscribed thread requests via resolve_threads. The
// whole file is sanitizer-hot: it runs under the asan preset like every
// suite, and the arena/merge paths are exactly what ASan needs to see.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"
#include "rrr/sharded.hpp"
#include "runtime/thread_info.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

DiffusionGraph small_graph(DiffusionModel model, std::uint64_t seed = 13) {
  return testing::make_weighted_graph(gen_erdos_renyi(200, 900, seed), model);
}

ShardedConfig config_for(DiffusionModel model, int shards,
                         bool adaptive = true) {
  ShardedConfig config;
  config.shards = shards;
  config.model = model;
  config.rng_seed = 0xABCD;
  config.batch_size = 4;
  config.adaptive_representation = adaptive;
  return config;
}

/// Generates `count` sets through the sharded pipeline and asserts the
/// flattened image matches the serial per-index reference sampler.
void expect_matches_serial(const DiffusionGraph& g, DiffusionModel model,
                           std::size_t count, int shards, bool adaptive) {
  ShardedSampler sampler(g.reverse, config_for(model, shards, adaptive));
  RRRPool pool(g.num_vertices());
  pool.resize(count);
  sampler.generate(pool, 0, count, nullptr);

  const RRRPool reference =
      testing::sample_pool(g, model, count, 0xABCD, adaptive);
  const FlatPool a = pool.flatten();
  const FlatPool b = reference.flatten();
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.vertices, b.vertices);
}

// --- ShardPlan invariants ---

TEST(ShardPlan, SlicesPartitionTheRangeExactly) {
  const NumaTopology& topo = numa_topology();
  for (const int shards : {1, 2, 3, 7, 16}) {
    const ShardPlan plan = ShardPlan::make(100, 420, shards, 4, topo);
    ASSERT_EQ(plan.shards.size(), static_cast<std::size_t>(shards));
    std::uint64_t cursor = 100;
    std::uint64_t total = 0;
    for (const ShardPlan::Shard& shard : plan.shards) {
      EXPECT_EQ(shard.begin, cursor);  // contiguous, no gap, no overlap
      EXPECT_LE(shard.begin, shard.end);
      cursor = shard.end;
      total += shard.size();
    }
    EXPECT_EQ(cursor, 420u);
    EXPECT_EQ(total, 320u);
  }
}

TEST(ShardPlan, MoreShardsThanSetsYieldsEmptyShards) {
  const ShardPlan plan = ShardPlan::make(0, 3, 8, 4, numa_topology());
  std::size_t empty = 0;
  std::uint64_t total = 0;
  for (const ShardPlan::Shard& shard : plan.shards) {
    empty += shard.empty() ? 1 : 0;
    total += shard.size();
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(empty, 5u);
}

TEST(ShardPlan, WorkerGroupsPartitionWorkersWhenWorkersOutnumberShards) {
  const ShardPlan plan = ShardPlan::make(0, 1000, 3, 8, numa_topology());
  std::size_t covered = 0;
  std::size_t cursor = 0;
  for (const ShardPlan::Shard& shard : plan.shards) {
    EXPECT_GE(shard.worker_count, 1u);
    EXPECT_EQ(shard.first_worker, cursor);
    cursor += shard.worker_count;
    covered += shard.worker_count;
  }
  EXPECT_EQ(covered, 8u);
}

TEST(ShardPlan, EveryShardServedWhenShardsOutnumberWorkers) {
  const ShardPlan plan = ShardPlan::make(0, 1000, 9, 2, numa_topology());
  std::vector<bool> served(9, false);
  for (std::size_t w = 0; w < plan.total_workers; ++w) {
    for (const std::size_t s : plan.shards_for_worker(w)) {
      EXPECT_FALSE(served[s]) << "shard " << s << " served twice";
      served[s] = true;
      EXPECT_EQ(plan.shards[s].worker_count, 1u);
    }
  }
  for (std::size_t s = 0; s < served.size(); ++s) {
    EXPECT_TRUE(served[s]) << "shard " << s << " unserved";
  }
}

TEST(ShardPlan, DomainsComeFromTheTopology) {
  const NumaTopology& topo = numa_topology();
  const ShardPlan plan = ShardPlan::make(0, 64, 6, 2, topo);
  for (const ShardPlan::Shard& shard : plan.shards) {
    EXPECT_NE(std::find(topo.nodes.begin(), topo.nodes.end(), shard.domain),
              topo.nodes.end());
  }
}

// --- ShardArena staging ---

TEST(ShardArena, RoundTripsRunsAcrossChunkBoundaries) {
  ShardArena arena(/*chunk_vertices=*/8);
  std::vector<std::vector<VertexId>> runs = {
      {1, 2, 3, 4, 5}, {6, 7, 8}, {9}, {10, 11, 12, 13, 14, 15, 16},
      {}, {17, 18}};
  std::vector<ShardArena::Ref> refs;
  for (const auto& run : runs) refs.push_back(arena.append(run));
  ASSERT_EQ(arena.runs(), runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto view = arena.view(refs[i]);
    EXPECT_EQ(std::vector<VertexId>(view.begin(), view.end()), runs[i]);
  }
}

TEST(ShardArena, RunLargerThanChunkGetsDedicatedChunk) {
  ShardArena arena(/*chunk_vertices=*/4);
  std::vector<VertexId> giant(1000);
  std::iota(giant.begin(), giant.end(), 0);
  const auto ref = arena.append(giant);
  const auto view = arena.view(ref);
  EXPECT_EQ(std::vector<VertexId>(view.begin(), view.end()), giant);
  EXPECT_GE(arena.mapped_bytes(), giant.size() * sizeof(VertexId));
}

// --- Merge bit-identity under degenerate shapes ---

TEST(ShardedSampler, EmptyShardsMergeCleanly) {
  // 3 sets across 8 shards: five shards stage nothing.
  const auto g = small_graph(DiffusionModel::kIndependentCascade);
  expect_matches_serial(g, DiffusionModel::kIndependentCascade, 3, 8, true);
}

TEST(ShardedSampler, OneGiantShardMatchesSerial) {
  const auto g = small_graph(DiffusionModel::kIndependentCascade);
  expect_matches_serial(g, DiffusionModel::kIndependentCascade, 400, 1,
                        true);
}

TEST(ShardedSampler, ZeroSetsIsANoOp) {
  const auto g = small_graph(DiffusionModel::kIndependentCascade);
  ShardedSampler sampler(
      g.reverse, config_for(DiffusionModel::kIndependentCascade, 4));
  RRRPool pool(g.num_vertices());
  sampler.generate(pool, 0, 0, nullptr);
  EXPECT_EQ(pool.size(), 0u);
  std::uint64_t staged = 0;
  for (const std::uint64_t s : sampler.stats().sets_per_shard) staged += s;
  EXPECT_EQ(staged, 0u);
}

TEST(ShardedSampler, ShardsAboveThreadsAboveNodes) {
  // shard count (5) > thread count (2) > NUMA node count (1 on CI).
  const auto g = small_graph(DiffusionModel::kLinearThreshold);
  ThreadCountScope scope(2);
  expect_matches_serial(g, DiffusionModel::kLinearThreshold, 123, 5, true);
}

TEST(ShardedSampler, OversubscribedThreadsViaResolveThreads) {
  // resolve_threads honors explicit oversubscription requests verbatim;
  // the pipeline must stay correct when workers outnumber cores.
  const auto g = small_graph(DiffusionModel::kIndependentCascade);
  const int oversubscribed = resolve_threads(4 * max_threads());
  ASSERT_GT(oversubscribed, max_threads());
  ThreadCountScope scope(oversubscribed);
  expect_matches_serial(g, DiffusionModel::kIndependentCascade, 200, 3,
                        true);
}

TEST(ShardedSampler, VectorOnlyRepresentationMatchesSerial) {
  // The dist/ wire format path (adaptive_representation = false).
  const auto g = small_graph(DiffusionModel::kIndependentCascade, 29);
  expect_matches_serial(g, DiffusionModel::kIndependentCascade, 150, 4,
                        false);
}

TEST(ShardedSampler, GrowingRangesMatchOneShotGeneration) {
  // The martingale driver calls generate() with growing ranges; the
  // union must equal a single-range build.
  const auto g = small_graph(DiffusionModel::kIndependentCascade, 31);
  const auto model = DiffusionModel::kIndependentCascade;
  ShardedSampler incremental(g.reverse, config_for(model, 3));
  RRRPool grown(g.num_vertices());
  grown.resize(40);
  incremental.generate(grown, 0, 40, nullptr);
  grown.resize(170);
  incremental.generate(grown, 40, 170, nullptr);

  ShardedSampler oneshot(g.reverse, config_for(model, 3));
  RRRPool whole(g.num_vertices());
  whole.resize(170);
  oneshot.generate(whole, 0, 170, nullptr);

  const FlatPool a = grown.flatten();
  const FlatPool b = whole.flatten();
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.vertices, b.vertices);
}

TEST(ShardedSampler, FusedCountersCountMembership) {
  const auto g = small_graph(DiffusionModel::kIndependentCascade, 37);
  const auto model = DiffusionModel::kIndependentCascade;
  constexpr std::size_t kSets = 120;

  ShardedSampler sampler(g.reverse, config_for(model, 4));
  RRRPool pool(g.num_vertices());
  pool.resize(kSets);
  CounterArray counters(g.num_vertices());
  sampler.generate(pool, 0, kSets, &counters);

  std::vector<std::uint64_t> expected(g.num_vertices(), 0);
  for (std::size_t i = 0; i < kSets; ++i) {
    pool[i].for_each([&](VertexId v) { ++expected[v]; });
  }
  EXPECT_EQ(counters.snapshot(), expected);
}

TEST(ShardedSampler, StatsDescribeThePlan) {
  const auto g = small_graph(DiffusionModel::kIndependentCascade, 41);
  ShardedSampler sampler(
      g.reverse, config_for(DiffusionModel::kIndependentCascade, 4));
  RRRPool pool(g.num_vertices());
  pool.resize(100);
  sampler.generate(pool, 0, 100, nullptr);

  const ShardStats& stats = sampler.stats();
  ASSERT_EQ(stats.sets_per_shard.size(), 4u);
  EXPECT_EQ(std::accumulate(stats.sets_per_shard.begin(),
                            stats.sets_per_shard.end(), std::uint64_t{0}),
            100u);
  EXPECT_EQ(stats.shard_domains.size(), 4u);
  EXPECT_GE(stats.numa_domains, 1);
  EXPECT_GT(stats.staged_bytes, 0u);
}

// --- Zero-copy SegmentedPool path ---

TEST(ShardedSampler, ZeroCopyGenerateMatchesSerialReference) {
  const auto g = small_graph(DiffusionModel::kIndependentCascade, 47);
  const auto model = DiffusionModel::kIndependentCascade;
  constexpr std::size_t kSets = 180;

  ShardedSampler sampler(g.reverse, config_for(model, 4));
  SegmentedPool segments(g.num_vertices());
  segments.resize(kSets);
  sampler.generate(segments, 0, kSets, nullptr);

  const RRRPool reference =
      testing::sample_pool(g, model, kSets, 0xABCD, /*adaptive=*/true);
  const FlatPool a = RRRPoolView(segments).flatten();
  const FlatPool b = reference.flatten();
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.vertices, b.vertices);

  // The zero-copy contract: payload staged once, merged never.
  EXPECT_EQ(sampler.stats().merged_bytes, 0u);
  EXPECT_EQ(sampler.stats().staged_bytes,
            reference.total_vertices() * sizeof(VertexId));
}

TEST(ShardedSampler, ZeroCopyGrowingRangesRetainEarlierRounds) {
  // The martingale probe loop extends the pool; earlier rounds' entries
  // must stay valid (the arenas are never reset on this path).
  const auto g = small_graph(DiffusionModel::kIndependentCascade, 53);
  const auto model = DiffusionModel::kIndependentCascade;

  ShardedSampler sampler(g.reverse, config_for(model, 3));
  SegmentedPool segments(g.num_vertices());
  segments.resize(50);
  sampler.generate(segments, 0, 50, nullptr);
  const FlatPool first_round = RRRPoolView(segments).flatten();
  segments.resize(200);
  sampler.generate(segments, 50, 200, nullptr);

  const RRRPool reference =
      testing::sample_pool(g, model, 200, 0xABCD, /*adaptive=*/true);
  const FlatPool grown = RRRPoolView(segments).flatten();
  const FlatPool whole = reference.flatten();
  EXPECT_EQ(grown.offsets, whole.offsets);
  EXPECT_EQ(grown.vertices, whole.vertices);
  // Round 1's slots are a prefix of the final image, untouched.
  for (std::size_t i = 0; i < first_round.offsets.size(); ++i) {
    EXPECT_EQ(grown.offsets[i], first_round.offsets[i]);
  }
}

TEST(ShardedSampler, ZeroCopyFusedCountersCountMembership) {
  const auto g = small_graph(DiffusionModel::kIndependentCascade, 59);
  constexpr std::size_t kSets = 90;
  ShardedSampler sampler(
      g.reverse, config_for(DiffusionModel::kIndependentCascade, 4));
  SegmentedPool segments(g.num_vertices());
  segments.resize(kSets);
  CounterArray counters(g.num_vertices());
  sampler.generate(segments, 0, kSets, &counters);

  std::vector<std::uint64_t> expected(g.num_vertices(), 0);
  const RRRPoolView view(segments);
  for (std::size_t i = 0; i < kSets; ++i) {
    view[i].for_each([&](VertexId v) { ++expected[v]; });
  }
  EXPECT_EQ(counters.snapshot(), expected);
}

TEST(ShardedSampler, MergePathReusesArenaChunksAcrossRounds) {
  // Round N+1's merge-path staging must reuse the chunks round N mapped:
  // mapped_bytes plateaus while staged_bytes keeps accumulating, and
  // every merged byte is accounted.
  const auto g = small_graph(DiffusionModel::kIndependentCascade, 61);
  // Two workers, one per shard: every worker stages in BOTH rounds, so
  // the mapped-bytes plateau is deterministic (with more workers than
  // batches, which workers win batches — and thus map chunks — races).
  ThreadCountScope scope(2);
  ShardedSampler sampler(
      g.reverse, config_for(DiffusionModel::kIndependentCascade, 2));
  RRRPool pool(g.num_vertices());

  pool.resize(100);
  sampler.generate(pool, 0, 100, nullptr);
  const ShardStats round1 = sampler.stats();
  ASSERT_GT(round1.staged_bytes, 0u);
  ASSERT_GT(round1.merged_bytes, 0u);
  EXPECT_EQ(round1.merged_bytes, round1.staged_bytes);

  pool.resize(200);
  sampler.generate(pool, 100, 200, nullptr);
  const ShardStats round2 = sampler.stats();
  EXPECT_GT(round2.staged_bytes, round1.staged_bytes);
  EXPECT_EQ(round2.merged_bytes, round2.staged_bytes);
  // Similar round volume → the reused chunks absorb it without mapping
  // a fresh arena set (chunk granularity is far above these payloads).
  EXPECT_EQ(round2.mapped_bytes, round1.mapped_bytes);
}

TEST(ShardedSampler, RejectsInvalidConfigurations) {
  const auto g = small_graph(DiffusionModel::kIndependentCascade, 43);
  ShardedConfig zero_shards =
      config_for(DiffusionModel::kIndependentCascade, 1);
  zero_shards.shards = 0;
  EXPECT_THROW((void)ShardedSampler(g.reverse, zero_shards), CheckError);

  ShardedConfig zero_batch =
      config_for(DiffusionModel::kIndependentCascade, 2);
  zero_batch.batch_size = 0;
  EXPECT_THROW((void)ShardedSampler(g.reverse, zero_batch), CheckError);

  ShardedSampler sampler(
      g.reverse, config_for(DiffusionModel::kIndependentCascade, 2));
  RRRPool pool(g.num_vertices());
  pool.resize(10);
  EXPECT_THROW(sampler.generate(pool, 0, 11, nullptr), CheckError);
}

TEST(ShardedSampler, RejectsMixedHandOffModes) {
  // One sampler, one mode: the cumulative byte accounting is per-mode,
  // so a merge round on a sampler that already served zero-copy (or
  // vice versa) must fail loudly rather than pollute the stats.
  const auto g = small_graph(DiffusionModel::kIndependentCascade, 67);
  const auto config = config_for(DiffusionModel::kIndependentCascade, 2);

  ShardedSampler zero_copy_first(g.reverse, config);
  SegmentedPool segments(g.num_vertices());
  segments.resize(10);
  zero_copy_first.generate(segments, 0, 10, nullptr);
  RRRPool pool(g.num_vertices());
  pool.resize(10);
  EXPECT_THROW(zero_copy_first.generate(pool, 0, 10, nullptr), CheckError);

  ShardedSampler merge_first(g.reverse, config);
  merge_first.generate(pool, 0, 10, nullptr);
  EXPECT_THROW(merge_first.generate(segments, 0, 10, nullptr), CheckError);
}

}  // namespace
}  // namespace eimm
