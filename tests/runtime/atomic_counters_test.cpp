#include "runtime/atomic_counters.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <cstdlib>
#include <vector>

#include "numa/topology.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

using testing::ScopedEnv;

TEST(CounterArray, StartsZeroed) {
  CounterArray c(100);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.get(i), 0u);
}

TEST(CounterArray, IncrementDecrement) {
  CounterArray c(4);
  c.increment(1);
  c.increment(1);
  c.increment(3);
  c.decrement(1);
  EXPECT_EQ(c.get(0), 0u);
  EXPECT_EQ(c.get(1), 1u);
  EXPECT_EQ(c.get(3), 1u);
}

TEST(CounterArray, ConcurrentIncrementsAreExact) {
  constexpr std::size_t kCounters = 64;
  constexpr int kPerThread = 20000;
  CounterArray c(kCounters);
#pragma omp parallel
  {
    for (int i = 0; i < kPerThread; ++i) {
      c.increment(static_cast<std::size_t>(i) % kCounters);
    }
  }
  const auto threads = static_cast<std::uint64_t>(omp_get_max_threads());
  EXPECT_EQ(c.total(), threads * kPerThread);
}

TEST(CounterArray, ConcurrentSameSlotContention) {
  // All threads hammer one counter — the fine-grained atomic must still
  // be exact (this is the `lock incq` pattern from the paper).
  CounterArray c(1);
  constexpr int kPerThread = 50000;
#pragma omp parallel
  {
    for (int i = 0; i < kPerThread; ++i) c.increment(0);
  }
  const auto threads = static_cast<std::uint64_t>(omp_get_max_threads());
  EXPECT_EQ(c.get(0), threads * kPerThread);
}

TEST(CounterArray, ResetZeroes) {
  CounterArray c(1000);
  for (std::size_t i = 0; i < c.size(); ++i) c.increment(i);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(CounterArray, SetAndSnapshot) {
  CounterArray c(3);
  c.set(0, 5);
  c.set(2, 9);
  const auto snap = c.snapshot();
  EXPECT_EQ(snap, (std::vector<std::uint64_t>{5, 0, 9}));
}

TEST(CounterArray, InterleavePolicyAllocationWorks) {
  CounterArray c(1 << 16, MemPolicy::kInterleave);
  c.increment(12345);
  EXPECT_EQ(c.get(12345), 1u);
  EXPECT_EQ(c.size(), std::size_t{1} << 16);
}

TEST(CounterArray, EmptyArray) {
  CounterArray c;
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.total(), 0u);
}

TEST(CounterArray, LocalSlabAliasesTheArray) {
  CounterArray c(8);
  CounterSlab slab = c.local();
  slab.increment(3);
  slab.increment(3);
  slab.decrement(3);
  slab.store(5, 42);
  EXPECT_EQ(c.get(3), 1u);
  EXPECT_EQ(c.get(5), 42u);
}

TEST(ShardedCounterArray, StartsZeroedAcrossAllReplicas) {
  ShardedCounterArray c(64, 4);
  EXPECT_EQ(c.size(), 64u);
  EXPECT_EQ(c.shards(), 4);
  EXPECT_EQ(c.total(), 0u);
  for (int s = 0; s < c.shards(); ++s) {
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(c.replica_get(s, i), 0u);
    }
  }
}

TEST(ShardedCounterArray, ShardCountClampsToAtLeastOne) {
  ShardedCounterArray c(4, 0);
  EXPECT_EQ(c.shards(), 1);
  c.increment(2);
  EXPECT_EQ(c.get(2), 1u);
}

TEST(ShardedCounterArray, GetSumsAcrossReplicas) {
  ShardedCounterArray c(8, 3);
  c.local(0).increment(5);
  c.local(1).increment(5);
  c.local(2).increment(5);
  c.local(1).increment(5);
  EXPECT_EQ(c.get(5), 4u);
  EXPECT_EQ(c.replica_get(1, 5), 2u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(ShardedCounterArray, CrossReplicaDecrementSumsExactly) {
  // A decrement may land on a different replica than the increment it
  // cancels (the thread homes moved); the per-replica value wraps but
  // the modular sum stays exact — the property the §IV-C adaptive
  // update relies on.
  ShardedCounterArray c(4, 2);
  c.local(0).increment(1);
  c.local(1).decrement(1);
  EXPECT_EQ(c.get(1), 0u);
  c.local(1).decrement(1);
  c.local(0).increment(1);
  c.local(0).increment(1);
  EXPECT_EQ(c.get(1), 1u);
}

TEST(ShardedCounterArray, HomeShardIsAValidReplica) {
  ShardedCounterArray c(16, 3);
  const int home = c.home_shard();
  EXPECT_GE(home, 0);
  EXPECT_LT(home, c.shards());
#pragma omp parallel
  {
    const int h = c.home_shard();
    EXPECT_GE(h, 0);
    EXPECT_LT(h, c.shards());
  }
}

TEST(ShardedCounterArray, SnapshotMatchesFlatUnderConcurrentMixedUpdates) {
  // The core equivalence: replay one random increment/decrement stream
  // into both layouts from concurrent threads; the summed snapshots must
  // agree slot for slot.
  constexpr std::size_t kCounters = 256;
  constexpr std::size_t kOps = 1 << 15;
  std::vector<std::uint32_t> targets(kOps);
  std::vector<std::uint8_t> is_increment(kOps);
  Xoshiro256 rng(99);
  for (std::size_t i = 0; i < kOps; ++i) {
    targets[i] = static_cast<std::uint32_t>(rng.next_bounded(kCounters));
    // Bias toward increments so sums stay positive overall.
    is_increment[i] = rng.next_bounded(4) != 0 ? 1 : 0;
  }

  CounterArray flat(kCounters);
  ShardedCounterArray sharded(kCounters, 4);
#pragma omp parallel
  {
    CounterSlab flat_slab = flat.local();
    CounterSlab sharded_slab = sharded.local();
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < kOps; ++i) {
      if (is_increment[i] != 0) {
        flat_slab.increment(targets[i]);
        sharded_slab.increment(targets[i]);
      } else {
        flat_slab.decrement(targets[i]);
        sharded_slab.decrement(targets[i]);
      }
    }
  }
  EXPECT_EQ(sharded.snapshot(), flat.snapshot());
}

TEST(ShardedCounterArray, ResetZeroesEveryReplica) {
  ShardedCounterArray c(32, 3);
  for (int s = 0; s < c.shards(); ++s) {
    for (std::size_t i = 0; i < c.size(); ++i) c.local(s).increment(i);
  }
  EXPECT_GT(c.total(), 0u);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
  for (int s = 0; s < c.shards(); ++s) {
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(c.replica_get(s, i), 0u);
    }
  }
}

TEST(ShardedCounterArray, LoadBaseReproducesTheFlatValues) {
  CounterArray base(100);
  for (std::size_t i = 0; i < base.size(); ++i) base.set(i, i * 7 + 1);
  ShardedCounterArray sharded(100, 4);
  sharded.load_base(base);
  EXPECT_EQ(sharded.snapshot(), base.snapshot());
}

TEST(ShardedCounterArray, LoadBaseRejectsUndersizedBase) {
  CounterArray base(10);
  ShardedCounterArray sharded(20, 2);
  EXPECT_THROW(sharded.load_base(base), CheckError);
}

TEST(ShardedCounterArray, SingleShardBehavesLikeFlat) {
  ShardedCounterArray c(16, 1);
  CounterArray flat(16);
  for (std::size_t i = 0; i < 16; ++i) {
    c.increment(i % 5);
    flat.increment(i % 5);
  }
  EXPECT_EQ(c.snapshot(), flat.snapshot());
  EXPECT_EQ(c.home_shard(), 0);
}

TEST(ShardedCounterArray, ReloadBaseEqualsResetPlusLoadOnDirtyState) {
  // The SelectionWorkspace reload contract: whatever a previous probe
  // round left behind (increments AND cross-replica decrement wraps),
  // one reload_base() pass must restore the exact base values — fused
  // wipe+load, bit-identical to the two-pass reset()+load_base().
  constexpr std::size_t kN = 257;
  CounterArray base(kN);
  for (std::size_t i = 0; i < kN; ++i) base.set(i, i * 3 + 1);

  for (const int shards : {1, 2, 4}) {
    ShardedCounterArray dirty(kN, shards);
    ShardedCounterArray reference(kN, shards);
    // Dirty every replica, including below-zero wraps on replica 0.
    for (int s = 0; s < dirty.shards(); ++s) {
      for (std::size_t i = 0; i < kN; i += 3) dirty.local(s).increment(i);
    }
    for (std::size_t i = 0; i < kN; i += 5) dirty.local(0).decrement(i);

    dirty.reload_base(base);
    reference.reset();
    reference.load_base(base);
    EXPECT_EQ(dirty.snapshot(), reference.snapshot()) << "shards=" << shards;
    EXPECT_EQ(dirty.snapshot(), base.snapshot()) << "shards=" << shards;
  }
}

TEST(ResolveCounterShards, ExplicitRequestWins) {
  ScopedEnv env("EIMM_COUNTER_SHARDS", "7");
  EXPECT_EQ(resolve_counter_shards(3), 3);
  EXPECT_EQ(resolve_counter_shards(0), 7);
}

TEST(ResolveCounterShards, UnsetEnvironmentFallsBackToTopology) {
  const char* previous = std::getenv("EIMM_COUNTER_SHARDS");
  if (previous == nullptr) {
    EXPECT_EQ(resolve_counter_shards(0), numa_topology().num_nodes());
  }
  EXPECT_GE(resolve_counter_shards(0), 1);
}

}  // namespace
}  // namespace eimm
