#include "io/binary.hpp"

#include <cstring>
#include <fstream>

#include "support/failpoint.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace bin {

namespace detail {

void fail(const std::string& message) { throw CheckError(message); }

void maybe_inject_read(const char* what, std::optional<std::uint64_t> at) {
  if (fail::inject("io.bin.read")) {
    fail_section("truncated (injected fault)", what, at);
  }
}

void fail_section(const char* reason, const char* section,
                  std::optional<std::uint64_t> offset) {
  std::string message = std::string(reason) + ' ' + section;
  if (offset.has_value()) {
    message += " at byte offset " + std::to_string(*offset);
  }
  throw FormatError(message, section, offset);
}

std::optional<std::uint64_t> tell(std::istream& is) {
  const std::istream::pos_type pos = is.tellg();
  if (pos == std::istream::pos_type(-1)) return std::nullopt;
  return static_cast<std::uint64_t>(pos);
}

std::optional<std::uint64_t> remaining_bytes(std::istream& is) {
  const std::istream::pos_type pos = is.tellg();
  if (pos == std::istream::pos_type(-1)) return std::nullopt;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return std::nullopt;
  return static_cast<std::uint64_t>(end - pos);
}

}  // namespace detail

void write_header(std::ostream& os, std::string_view magic,
                  std::uint32_t version) {
  EIMM_CHECK(magic.size() <= 8, "binary magic longer than 8 bytes");
  char padded[8] = {};
  std::memcpy(padded, magic.data(), magic.size());
  os.write(padded, sizeof padded);
  write_pod(os, version);
}

std::uint32_t read_header_any(std::istream& is, std::string_view magic,
                              std::span<const std::uint32_t> accepted,
                              const char* what) {
  EIMM_CHECK(magic.size() <= 8, "binary magic longer than 8 bytes");
  EIMM_CHECK(!accepted.empty(), "no accepted versions given");
  char expected[8] = {};
  std::memcpy(expected, magic.data(), magic.size());
  char found[8] = {};
  const auto at = detail::tell(is);
  is.read(found, sizeof found);
  if (!is.good() || std::memcmp(found, expected, sizeof found) != 0) {
    detail::fail_section("not a recognized", what, at);
  }
  std::uint32_t version = 0;
  read_pod(is, version, what);
  for (const std::uint32_t v : accepted) {
    if (version == v) return version;
  }
  const auto ver_at = detail::tell(is);
  throw FormatError(std::string("unsupported version ") +
                        std::to_string(version) + " of " + what,
                    what, ver_at);
}

std::uint32_t read_header(std::istream& is, std::string_view magic,
                          std::uint32_t expected_version, const char* what) {
  const std::uint32_t accepted[] = {expected_version};
  return read_header_any(is, magic, accepted, what);
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod(os, static_cast<std::uint64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is, const char* what) {
  std::uint64_t size = 0;
  read_pod(is, size, what);
  const auto at = detail::tell(is);
  if (const auto left = detail::remaining_bytes(is)) {
    if (size > *left) detail::fail_section("truncated string in", what, at);
  }
  std::string s;
  try {
    s.resize(size);
  } catch (const std::exception&) {
    detail::fail_section("implausible string length in", what, at);
  }
  is.read(s.data(), static_cast<std::streamsize>(size));
  if (!is.good()) detail::fail_section("truncated string in", what, at);
  return s;
}

}  // namespace bin

namespace {

constexpr std::string_view kCsrMagic = "EIMMCSR";
constexpr std::uint32_t kCsrVersion = 1;
constexpr const char* kCsrWhat = "EfficientIMM binary graph file";

}  // namespace

void write_binary_csr(std::ostream& os, const CSRGraph& g) {
  bin::write_header(os, kCsrMagic, kCsrVersion);
  bin::write_pod(os, static_cast<std::uint8_t>(g.has_weights() ? 1 : 0));
  bin::write_vec(os, g.offsets());
  bin::write_vec(os, g.targets());
  if (g.has_weights()) bin::write_vec(os, g.raw_weights());
}

void write_binary_csr_file(const std::string& path, const CSRGraph& g) {
  std::ofstream os(path, std::ios::binary);
  EIMM_CHECK(os.good(), "cannot open file for writing");
  write_binary_csr(os, g);
  EIMM_CHECK(os.good(), "write failed");
}

CSRGraph read_binary_csr(std::istream& is) {
  bin::read_header(is, kCsrMagic, kCsrVersion, kCsrWhat);
  std::uint8_t weighted = 0;
  bin::read_pod(is, weighted, kCsrWhat);
  auto offsets = bin::read_vec<EdgeId>(is, "graph offsets");
  auto targets = bin::read_vec<VertexId>(is, "graph targets");
  std::vector<float> weights;
  if (weighted != 0) weights = bin::read_vec<float>(is, "graph weights");
  return CSRGraph(std::move(offsets), std::move(targets), std::move(weights));
}

CSRGraph read_binary_csr_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EIMM_CHECK(is.good(), "cannot open binary graph file");
  return read_binary_csr(is);
}

}  // namespace eimm
