// runtime/affinity coverage: EIMM_PIN parsing (including the negative
// paths), topology fallback on single-node/CI hosts, plan construction
// against synthetic multi-domain topologies, and idempotent re-pinning.
#include "runtime/affinity.hpp"

#include <gtest/gtest.h>
#include <omp.h>
#include <sched.h>

#include "test_util.hpp"

namespace eimm {
namespace {

using testing::ScopedEnv;

/// The paper's testbed shape in miniature: 2 domains, 2 cpus each.
NumaTopology two_domain_topology() {
  NumaTopology topo;
  topo.nodes = {0, 1};
  topo.cpu_to_node = {0, 0, 1, 1};
  return topo;
}

NumaTopology single_domain_topology() {
  NumaTopology topo;
  topo.nodes = {0};
  topo.cpu_to_node = {0, 0};
  return topo;
}

TEST(ParsePinMode, AcceptsEveryModeCaseInsensitively) {
  bool ok = false;
  EXPECT_EQ(parse_pin_mode("none", PinMode::kAuto, &ok), PinMode::kNone);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_pin_mode("AUTO", PinMode::kNone, &ok), PinMode::kAuto);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_pin_mode("Compact", PinMode::kAuto, &ok),
            PinMode::kCompact);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_pin_mode("sPrEaD", PinMode::kAuto, &ok), PinMode::kSpread);
  EXPECT_TRUE(ok);
}

TEST(ParsePinMode, RejectsGarbageToFallback) {
  bool ok = true;
  EXPECT_EQ(parse_pin_mode("scattered", PinMode::kCompact, &ok),
            PinMode::kCompact);
  EXPECT_FALSE(ok);
  ok = true;
  EXPECT_EQ(parse_pin_mode("", PinMode::kNone, &ok), PinMode::kNone);
  EXPECT_FALSE(ok);
  ok = true;
  EXPECT_EQ(parse_pin_mode("1", PinMode::kAuto, &ok), PinMode::kAuto);
  EXPECT_FALSE(ok);
  // Null ok pointer must be tolerated (env resolution passes one, CLIs
  // may not).
  EXPECT_EQ(parse_pin_mode("bogus", PinMode::kSpread), PinMode::kSpread);
}

TEST(ResolvePinMode, EnvironmentDrivesResolution) {
  reset_pin_mode();
  {
    ScopedEnv env("EIMM_PIN", "spread");
    EXPECT_EQ(resolve_pin_mode(), PinMode::kSpread);
  }
  {
    ScopedEnv env("EIMM_PIN", "none");
    EXPECT_EQ(resolve_pin_mode(), PinMode::kNone);
  }
  {
    // Negative path: unparseable EIMM_PIN falls back to auto (and warns)
    // instead of aborting the run.
    ScopedEnv env("EIMM_PIN", "sideways");
    EXPECT_EQ(resolve_pin_mode(), PinMode::kAuto);
  }
  {
    ScopedEnv env("EIMM_PIN", nullptr);
    EXPECT_EQ(resolve_pin_mode(), PinMode::kAuto);
  }
}

TEST(ResolvePinMode, ExplicitOverrideWinsOverEnvironment) {
  ScopedEnv env("EIMM_PIN", "spread");
  set_pin_mode(PinMode::kCompact);
  EXPECT_EQ(resolve_pin_mode(), PinMode::kCompact);
  reset_pin_mode();
  EXPECT_EQ(resolve_pin_mode(), PinMode::kSpread);
}

TEST(EffectivePinMode, AutoIsCompactOnNumaAndNoneOnFlatHosts) {
  EXPECT_EQ(effective_pin_mode(PinMode::kAuto, two_domain_topology()),
            PinMode::kCompact);
  EXPECT_EQ(effective_pin_mode(PinMode::kAuto, single_domain_topology()),
            PinMode::kNone);
  // Explicit modes pass through untouched, even on flat hosts.
  EXPECT_EQ(effective_pin_mode(PinMode::kSpread, single_domain_topology()),
            PinMode::kSpread);
  EXPECT_EQ(effective_pin_mode(PinMode::kNone, two_domain_topology()),
            PinMode::kNone);
}

TEST(MakePinPlan, CompactFillsDomainsInOrder) {
  const PinPlan plan =
      make_pin_plan(PinMode::kCompact, 4, two_domain_topology());
  ASSERT_TRUE(plan.active());
  EXPECT_EQ(plan.mode, PinMode::kCompact);
  EXPECT_EQ(plan.worker_cpu, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(plan.worker_domain, (std::vector<int>{0, 0, 1, 1}));
}

TEST(MakePinPlan, SpreadRoundRobinsDomains) {
  const PinPlan plan =
      make_pin_plan(PinMode::kSpread, 4, two_domain_topology());
  ASSERT_TRUE(plan.active());
  EXPECT_EQ(plan.worker_cpu, (std::vector<int>{0, 2, 1, 3}));
  EXPECT_EQ(plan.worker_domain, (std::vector<int>{0, 1, 0, 1}));
}

TEST(MakePinPlan, OversubscriptionWrapsModuloCpus) {
  const PinPlan plan =
      make_pin_plan(PinMode::kCompact, 6, two_domain_topology());
  ASSERT_TRUE(plan.active());
  EXPECT_EQ(plan.worker_cpu, (std::vector<int>{0, 1, 2, 3, 0, 1}));
}

TEST(MakePinPlan, AutoOnSingleDomainIsInactive) {
  // The CI/laptop fallback: kAuto on a flat host must produce an
  // inactive plan so every pinning call degenerates to a no-op.
  const PinPlan plan =
      make_pin_plan(PinMode::kAuto, 4, single_domain_topology());
  EXPECT_FALSE(plan.active());
  EXPECT_EQ(plan.mode, PinMode::kNone);
}

TEST(MakePinPlan, NoneAndZeroWorkersAreInactive) {
  EXPECT_FALSE(
      make_pin_plan(PinMode::kNone, 8, two_domain_topology()).active());
  EXPECT_FALSE(
      make_pin_plan(PinMode::kCompact, 0, two_domain_topology()).active());
  NumaTopology empty;
  empty.nodes = {0};
  EXPECT_FALSE(make_pin_plan(PinMode::kCompact, 4, empty).active());
}

TEST(MakePinPlan, SkipsCpusOnOfflineNodes) {
  NumaTopology topo;
  topo.nodes = {0, 2};            // sparse node ids, node 1 offline
  topo.cpu_to_node = {0, 1, 2, 2};  // cpu 1 maps to the offline node
  const PinPlan plan = make_pin_plan(PinMode::kCompact, 3, topo);
  ASSERT_TRUE(plan.active());
  EXPECT_EQ(plan.worker_cpu, (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(plan.worker_domain, (std::vector<int>{0, 2, 2}));
}

TEST(PinCurrentThread, RejectsNegativeCpu) {
  EXPECT_FALSE(pin_current_thread(-1));
}

TEST(SetAffinityCpus, RejectsEmptyAndInvalidLists) {
  EXPECT_FALSE(set_affinity_cpus({}));
  EXPECT_FALSE(set_affinity_cpus({-1}));
}

TEST(ScopedAffinityRestore, RestoresTheCallerMaskAfterPinning) {
  const std::vector<int> original = current_affinity_cpus();
  ASSERT_FALSE(original.empty()) << "affinity read-back unsupported";
  {
    ScopedAffinityRestore guard;
    ASSERT_TRUE(pin_current_thread(original.front()));
    EXPECT_EQ(current_affinity_cpus(), std::vector<int>{original.front()});
  }
  // The guard must widen the mask back to what the caller had.
  EXPECT_EQ(current_affinity_cpus(), original);
}

TEST(PinCurrentThread, RepinningIsIdempotent) {
  const std::vector<int> original = current_affinity_cpus();
  ASSERT_FALSE(original.empty()) << "affinity read-back unsupported";
  // Pin to the first cpu we are already allowed on.
  const int cpu = original.front();
  ASSERT_TRUE(pin_current_thread(cpu));
  const std::vector<int> pinned = current_affinity_cpus();
  EXPECT_EQ(pinned, std::vector<int>{cpu});
  // Re-pinning to the same cpu succeeds and changes nothing.
  ASSERT_TRUE(pin_current_thread(cpu));
  EXPECT_EQ(current_affinity_cpus(), pinned);
  EXPECT_EQ(sched_getcpu(), cpu);
}

TEST(ApplyPin, InactivePlanIsANoOp) {
  PinPlan plan;  // inactive
  EXPECT_EQ(apply_pin(plan, 0), -1);
  EXPECT_EQ(apply_pin(plan, 7), -1);
}

TEST(PinOpenmpTeam, NoneModeReturnsEmptyMap) {
  EXPECT_TRUE(pin_openmp_team(PinMode::kNone).empty());
}

TEST(PinOpenmpTeam, ExplicitCompactPinsEveryTeamThread) {
  // Explicit compact is active even on a single-node host — the team
  // lands on the host's cpus in order, wrapping when oversubscribed.
  const auto map = pin_openmp_team(PinMode::kCompact);
  ASSERT_FALSE(map.empty());
  for (const PinnedThread& t : map) {
    EXPECT_GE(t.thread, 0);
    EXPECT_GE(t.cpu, 0);
  }
  // Idempotence: pinning the already-pinned team reports the same map.
  const auto again = pin_openmp_team(PinMode::kCompact);
  ASSERT_EQ(again.size(), map.size());
  for (std::size_t i = 0; i < map.size(); ++i) {
    EXPECT_EQ(again[i].thread, map[i].thread);
    EXPECT_EQ(again[i].cpu, map[i].cpu);
    EXPECT_EQ(again[i].domain, map[i].domain);
  }
}

}  // namespace
}  // namespace eimm
