// Reproducibility guarantees: per-index RNG streams make every result a
// pure function of (graph, options) — independent of thread count,
// scheduling, and feature flags.
#include <gtest/gtest.h>

#include "core/imm.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

ImmOptions base_options(DiffusionModel model) {
  ImmOptions opt;
  opt.k = 6;
  opt.model = model;
  opt.rng_seed = 31337;
  opt.max_rrr_sets = 200'000;
  return opt;
}

class DeterminismAcrossThreads : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismAcrossThreads, EfficientEngineIC) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-DBLP", DiffusionModel::kIndependentCascade, 0.02, 7);
  auto opt = base_options(DiffusionModel::kIndependentCascade);
  opt.threads = 1;
  const auto reference = run_efficient_imm(g, opt);
  opt.threads = GetParam();
  const auto variant = run_efficient_imm(g, opt);
  EXPECT_EQ(variant.seeds, reference.seeds);
  EXPECT_EQ(variant.num_rrr_sets, reference.num_rrr_sets);
  EXPECT_DOUBLE_EQ(variant.coverage_fraction, reference.coverage_fraction);
}

TEST_P(DeterminismAcrossThreads, EfficientEngineLT) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kLinearThreshold, 0.02, 7);
  auto opt = base_options(DiffusionModel::kLinearThreshold);
  opt.threads = 1;
  const auto reference = run_efficient_imm(g, opt);
  opt.threads = GetParam();
  EXPECT_EQ(run_efficient_imm(g, opt).seeds, reference.seeds);
}

TEST_P(DeterminismAcrossThreads, BaselineEngine) {
  const DiffusionGraph g = make_workload_with_weights(
      "web-Google", DiffusionModel::kIndependentCascade, 0.02, 7);
  auto opt = base_options(DiffusionModel::kIndependentCascade);
  opt.threads = 1;
  const auto reference = run_baseline_imm(g, opt);
  opt.threads = GetParam();
  EXPECT_EQ(run_baseline_imm(g, opt).seeds, reference.seeds);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, DeterminismAcrossThreads,
                         ::testing::Values(2, 4, 8));

TEST(Determinism, RepeatedRunsIdentical) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-YouTube", DiffusionModel::kIndependentCascade, 0.02, 7);
  const auto opt = base_options(DiffusionModel::kIndependentCascade);
  const auto a = run_efficient_imm(g, opt);
  const auto b = run_efficient_imm(g, opt);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.num_rrr_sets, b.num_rrr_sets);
  EXPECT_EQ(a.bitmap_sets, b.bitmap_sets);
}

TEST(Determinism, DifferentSeedsDifferentPools) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-YouTube", DiffusionModel::kIndependentCascade, 0.02, 7);
  auto opt = base_options(DiffusionModel::kIndependentCascade);
  const auto a = run_efficient_imm(g, opt);
  opt.rng_seed = 424242;
  const auto b = run_efficient_imm(g, opt);
  // Seed sets could coincide (the graph has clear winners) but the
  // sampled pool sizes/coverage almost surely differ at least slightly.
  EXPECT_TRUE(a.seeds != b.seeds ||
              a.coverage_fraction != b.coverage_fraction ||
              a.num_rrr_sets != b.num_rrr_sets);
}

TEST(Determinism, BatchSizeDoesNotChangeResults) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.02, 7);
  auto opt = base_options(DiffusionModel::kIndependentCascade);
  opt.batch_size = 4;
  const auto small_batches = run_efficient_imm(g, opt);
  opt.batch_size = 512;
  const auto large_batches = run_efficient_imm(g, opt);
  EXPECT_EQ(small_batches.seeds, large_batches.seeds);
}

}  // namespace
}  // namespace eimm
