#include "rrr/huffman.hpp"

#include <algorithm>
#include <queue>
#include <string>

#include "rrr/gap_codec.hpp"

namespace eimm {

namespace detail {

void fail_huffman(const char* reason, std::uint64_t bit) {
  throw CheckError(std::string(reason) + " at bit offset " +
                   std::to_string(bit));
}

}  // namespace detail

namespace {

/// Symbols with nonzero length, sorted by (length, value) — the
/// canonical order both tables are built from.
std::vector<int> canonical_order(const std::array<std::uint8_t, 256>& lengths) {
  std::vector<int> symbols;
  for (int s = 0; s < 256; ++s) {
    if (lengths[static_cast<std::size_t>(s)] > 0) symbols.push_back(s);
  }
  std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
    const auto la = lengths[static_cast<std::size_t>(a)];
    const auto lb = lengths[static_cast<std::size_t>(b)];
    if (la != lb) return la < lb;
    return a < b;
  });
  return symbols;
}

class BitWriter {
 public:
  void write(std::uint32_t code, std::uint8_t length) {
    for (int b = length - 1; b >= 0; --b) {
      if (bit_ == 0) bytes_.push_back(0);
      if ((code >> b) & 1u) {
        bytes_.back() |= static_cast<std::uint8_t>(1u << (7 - bit_));
      }
      bit_ = (bit_ + 1) % 8;
    }
    total_bits_ += length;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }
  [[nodiscard]] std::uint64_t bits() const noexcept { return total_bits_; }

 private:
  std::vector<std::uint8_t> bytes_;
  int bit_ = 0;
  std::uint64_t total_bits_ = 0;
};

}  // namespace

std::array<std::uint8_t, 256> HuffmanCodec::lengths_from_frequencies(
    const std::array<std::uint64_t, 256>& freq) {
  // Classic two-queue/heap construction; lengths are capped naturally
  // (256 symbols -> max depth 255 fits uint8).
  struct Node {
    std::uint64_t weight;
    int index;          // tie-break for determinism
    int left = -1;
    int right = -1;
    int symbol = -1;    // >= 0 for leaves
  };
  std::vector<Node> nodes;
  auto cmp = [&nodes](int a, int b) {
    if (nodes[static_cast<std::size_t>(a)].weight !=
        nodes[static_cast<std::size_t>(b)].weight) {
      return nodes[static_cast<std::size_t>(a)].weight >
             nodes[static_cast<std::size_t>(b)].weight;
    }
    return nodes[static_cast<std::size_t>(a)].index >
           nodes[static_cast<std::size_t>(b)].index;
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);

  for (int s = 0; s < 256; ++s) {
    if (freq[static_cast<std::size_t>(s)] == 0) continue;
    nodes.push_back({freq[static_cast<std::size_t>(s)],
                     static_cast<int>(nodes.size()), -1, -1, s});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }

  std::array<std::uint8_t, 256> lengths{};
  if (nodes.empty()) return lengths;
  if (nodes.size() == 1) {
    // Single-symbol alphabet: give it a 1-bit code.
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return lengths;
  }

  while (heap.size() > 1) {
    const int a = heap.top();
    heap.pop();
    const int b = heap.top();
    heap.pop();
    nodes.push_back({nodes[static_cast<std::size_t>(a)].weight +
                         nodes[static_cast<std::size_t>(b)].weight,
                     static_cast<int>(nodes.size()), a, b, -1});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }

  // Depth-first walk assigning depths as code lengths (iterative).
  std::vector<std::pair<int, std::uint8_t>> stack{{heap.top(), 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(idx)];
    if (node.symbol >= 0) {
      lengths[static_cast<std::size_t>(node.symbol)] =
          depth == 0 ? 1 : depth;  // degenerate guard
      continue;
    }
    stack.push_back({node.left, static_cast<std::uint8_t>(depth + 1)});
    stack.push_back({node.right, static_cast<std::uint8_t>(depth + 1)});
  }
  return lengths;
}

HuffmanEncodeTable HuffmanEncodeTable::build(
    const std::array<std::uint8_t, 256>& lengths) {
  // Canonical code assignment: symbols sorted by (length, value) get
  // consecutive codes; decode only needs the lengths array.
  HuffmanEncodeTable table;
  table.lengths = lengths;
  std::uint32_t code = 0;
  std::uint8_t previous_length = 0;
  for (const int s : canonical_order(lengths)) {
    const std::uint8_t length = lengths[static_cast<std::size_t>(s)];
    code <<= (length - previous_length);
    table.codes[static_cast<std::size_t>(s)] = code;
    ++code;
    previous_length = length;
  }
  return table;
}

HuffmanDecodeTable HuffmanDecodeTable::build(
    const std::array<std::uint8_t, 256>& lengths) {
  HuffmanDecodeTable table;
  table.lengths = lengths;
  for (const int s : canonical_order(lengths)) {
    table.ordered_symbols.push_back(static_cast<std::uint8_t>(s));
  }
  std::uint32_t code = 0;
  std::size_t index = 0;
  for (std::uint8_t length = 1; length <= 32; ++length) {
    code <<= 1;
    table.first_code[length] = code;
    table.first_index[length] = static_cast<std::uint32_t>(index);
    while (index < table.ordered_symbols.size() &&
           table.lengths[table.ordered_symbols[index]] == length) {
      if (length <= HuffmanDecodeTable::kFastBits) {
        // Prefix property: no other code shares this window's leading
        // bits, so every suffix pattern resolves to this symbol.
        const std::uint8_t symbol = table.ordered_symbols[index];
        const int free_bits = HuffmanDecodeTable::kFastBits - length;
        const std::uint32_t base = code << free_bits;
        for (std::uint32_t suffix = 0; suffix < (1u << free_bits);
             ++suffix) {
          table.fast[base + suffix] =
              static_cast<std::uint16_t>((symbol << 8) | length);
        }
      }
      ++index;
      ++code;
    }
  }
  return table;
}

HuffmanCodec::Encoded HuffmanCodec::encode(
    const std::vector<std::uint8_t>& data) {
  Encoded out;
  if (data.empty()) return out;

  std::array<std::uint64_t, 256> freq{};
  for (const std::uint8_t byte : data) ++freq[byte];
  out.code_lengths = lengths_from_frequencies(freq);
  const HuffmanEncodeTable table = HuffmanEncodeTable::build(out.code_lengths);

  BitWriter writer;
  for (const std::uint8_t byte : data) {
    writer.write(table.codes[byte], table.lengths[byte]);
  }
  out.payload_bits = writer.bits();
  out.bits = writer.take();
  out.bits.shrink_to_fit();
  return out;
}

std::vector<std::uint8_t> HuffmanCodec::decode(const Encoded& encoded) {
  std::vector<std::uint8_t> out;
  if (encoded.payload_bits == 0) return out;

  EIMM_CHECK(encoded.payload_bits <= encoded.bits.size() * 8,
             "truncated Huffman payload");
  const HuffmanDecodeTable table =
      HuffmanDecodeTable::build(encoded.code_lengths);
  std::uint64_t cursor = 0;
  while (cursor < encoded.payload_bits) {
    out.push_back(table.decode_one(encoded.bits.data(), encoded.payload_bits,
                                   cursor));
  }
  return out;
}

HuffmanSet HuffmanSet::encode(std::vector<VertexId> vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());

  // The shared gap-stream encoder IS the byte stream to compress — no
  // CompressedSet round trip; every producer of the format emits the
  // same bytes by construction.
  std::vector<std::uint8_t> gap_bytes;
  gap_bytes.reserve(vertices.size() * 2);
  append_gap_stream(gap_bytes, vertices);

  HuffmanSet set;
  set.count_ = vertices.size();
  set.encoded_ = HuffmanCodec::encode(gap_bytes);
  return set;
}

std::vector<VertexId> HuffmanSet::decode() const {
  std::vector<VertexId> out;
  out.reserve(count_);
  const std::vector<std::uint8_t> gap_bytes = HuffmanCodec::decode(encoded_);
  const GapRun run{gap_bytes.data(), gap_bytes.size(),
                   static_cast<std::uint32_t>(count_)};
  run.for_each([&](VertexId v) { out.push_back(v); });
  return out;
}

bool HuffmanSet::contains(VertexId v) const {
  // Full decode per lookup: deliberately exposes the codec overhead.
  const std::vector<VertexId> members = decode();
  return std::binary_search(members.begin(), members.end(), v);
}

}  // namespace eimm
