#include "support/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace eimm {
namespace {

std::string to_lower(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*s))));
  }
  return out;
}

LogLevel initial_threshold() {
  const char* env = std::getenv("EIMM_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string level = to_lower(env);
  if (level == "debug") return LogLevel::kDebug;
  if (level == "info") return LogLevel::kInfo;
  if (level == "warn") return LogLevel::kWarn;
  if (level == "error") return LogLevel::kError;
  if (level == "off") return LogLevel::kOff;
  std::fprintf(stderr,
               "[eimm WARN ] unrecognized EIMM_LOG value '%s' "
               "(expected debug|info|warn|error|off); keeping 'warn'\n",
               env);
  return LogLevel::kWarn;
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> t{static_cast<int>(initial_threshold())};
  return t;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

LogLevel log_threshold() noexcept {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) noexcept {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

std::uint64_t monotonic_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

int thread_ordinal() noexcept {
  static std::atomic<int> next{0};
  thread_local const int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void log_line(LogLevel level, const std::string& message) {
  const double seconds = static_cast<double>(monotonic_ns()) / 1e9;
  const int tid = thread_ordinal();
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[eimm %s +%.3fs T%02d] %s\n", level_tag(level),
               seconds, tid, message.c_str());
}

}  // namespace eimm
