#include "graph/scc.hpp"

#include <algorithm>

namespace eimm {

std::vector<VertexId> SccResult::component_sizes() const {
  std::vector<VertexId> sizes(num_components, 0);
  for (const VertexId c : component) sizes[c]++;
  return sizes;
}

VertexId SccResult::largest_component_size() const {
  const auto sizes = component_sizes();
  if (sizes.empty()) return 0;
  return *std::max_element(sizes.begin(), sizes.end());
}

SccResult strongly_connected_components(const CSRGraph& g) {
  const VertexId n = g.num_vertices();
  constexpr VertexId kUnvisited = kInvalidVertex;

  std::vector<VertexId> index(n, kUnvisited);
  std::vector<VertexId> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> stack;          // Tarjan's vertex stack
  std::vector<VertexId> component(n, 0);
  VertexId next_index = 0;
  VertexId num_components = 0;

  // Explicit DFS frame: vertex + position within its adjacency list.
  struct Frame {
    VertexId v;
    EdgeId edge;
  };
  std::vector<Frame> dfs;

  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, g.offsets()[root]});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const VertexId v = frame.v;
      if (frame.edge < g.offsets()[v + 1]) {
        const VertexId w = g.targets()[frame.edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, g.offsets()[w]});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        dfs.pop_back();
        if (!dfs.empty()) {
          lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v is the root of an SCC; pop it off the vertex stack.
          VertexId w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = num_components;
          } while (w != v);
          ++num_components;
        }
      }
    }
  }

  SccResult result;
  result.component = std::move(component);
  result.num_components = num_components;
  return result;
}

}  // namespace eimm
