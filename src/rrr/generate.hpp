// Reverse-reachability sampling (the Generate_RRRsets kernel).
//
// IC: probabilistic BFS on the transpose — in-edge (u -> v in G) is
// "live" with probability p(u,v), sampled on first touch (Algorithm 3,
// lines 1-13).
// LT: reverse random walk — at each vertex pick exactly one in-neighbor
// with probability equal to its edge weight (or none with the leftover
// probability), matching the live-edge characterization of the Linear
// Threshold model; sets are therefore paths, small but numerous (§III-A).
//
// Determinism: the caller seeds one RNG stream per RRR-set index, so set
// i's content depends only on (base_seed, i) — never on the thread that
// generated it or the schedule.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"
#include "support/macros.hpp"
#include "support/rng.hpp"

namespace eimm {

/// Epoch-stamped visited set: O(1) reset between RRR sets instead of an
/// O(|V|) clear — the structure the paper places NUMA-locally (§IV-B).
class VisitScratch {
 public:
  explicit VisitScratch(std::size_t n) : stamp_(n, 0) {}

  /// Starts a fresh logical bitmap (constant time amortized). When the
  /// 32-bit epoch wraps, every stamp written during the previous cycle
  /// could alias a future epoch as "visited", so the wrap does the one
  /// full O(|V|) clear per 2^32 rounds and restarts at epoch 1 (0 is
  /// reserved as the never-marked stamp value).
  void new_round() noexcept {
    if (++epoch_ == 0) {  // wrapped: do the rare full clear
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }
  [[nodiscard]] bool visited(VertexId v) const noexcept {
    return stamp_[v] == epoch_;
  }
  void mark(VertexId v) noexcept { stamp_[v] = epoch_; }
  [[nodiscard]] std::size_t size() const noexcept { return stamp_.size(); }

  /// Current epoch; 0 only before the first new_round().
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  /// Test seam: jumps the epoch counter so the wraparound clear is
  /// reachable without 2^32 new_round() calls. Stale stamps written
  /// before the jump keep their values, exactly as if the epochs in
  /// between had been consumed by empty rounds.
  void set_epoch_for_test(std::uint32_t epoch) noexcept { epoch_ = epoch; }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

/// Per-thread reusable buffers for one sampler.
struct SamplerScratch {
  explicit SamplerScratch(std::size_t n) : visited(n) { frontier.reserve(256); }
  VisitScratch visited;
  std::vector<VertexId> frontier;  // BFS queue storage
};

/// Null instrumentation: compiled away entirely. A probe observes every
/// access (check or mark) to the visited structure together with the
/// vertex id — enough to count events, time regions, or replay the
/// access stream through a memory model (bench/table2).
struct NullProbe {
  static void on_visited_access(VertexId v) noexcept { EIMM_UNUSED(v); }
};

/// Samples one RRR set under the IC model. `reverse` must carry IC
/// probabilities on its (in-)edges. Returns the member vertices
/// (unsorted; root always included). Probe hooks bracket the
/// visited-bitmap accesses for the Table II instrumentation; Scratch may
/// be any type exposing `.visited` (new_round/visited/mark) and
/// `.frontier`, so alternative visited-structure placements can be
/// compared under identical sampling.
template <typename Probe = NullProbe, typename Scratch = SamplerScratch>
std::vector<VertexId> sample_rrr_ic(const CSRGraph& reverse, VertexId root,
                                    Xoshiro256& rng, Scratch& scratch);

/// Samples one RRR set under the LT model. `reverse` must carry
/// normalized LT weights (Σ_u w(u,v) ≤ 1 per v).
template <typename Probe = NullProbe, typename Scratch = SamplerScratch>
std::vector<VertexId> sample_rrr_lt(const CSRGraph& reverse, VertexId root,
                                    Xoshiro256& rng, Scratch& scratch);

/// Model dispatch with deterministic per-index stream: root is chosen
/// uniformly from |V| using the stream's first draw.
std::vector<VertexId> sample_rrr(const CSRGraph& reverse, DiffusionModel model,
                                 std::uint64_t base_seed, std::uint64_t index,
                                 SamplerScratch& scratch);

// --- template definitions ---

template <typename Probe, typename Scratch>
std::vector<VertexId> sample_rrr_ic(const CSRGraph& reverse, VertexId root,
                                    Xoshiro256& rng, Scratch& scratch) {
  scratch.visited.new_round();
  scratch.frontier.clear();

  std::vector<VertexId> result;
  result.push_back(root);
  scratch.visited.mark(root);
  scratch.frontier.push_back(root);

  // BFS with an index cursor instead of pop_front (frontier doubles as
  // the visit log).
  for (std::size_t head = 0; head < scratch.frontier.size(); ++head) {
    const VertexId u = scratch.frontier[head];
    const auto neighbors = reverse.neighbors(u);
    const auto probs = reverse.weights(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const VertexId w = neighbors[i];
      Probe::on_visited_access(w);
      const bool seen = scratch.visited.visited(w);
      if (!seen && rng.next_bool(probs[i])) {
        Probe::on_visited_access(w);
        scratch.visited.mark(w);
        result.push_back(w);
        scratch.frontier.push_back(w);
      }
    }
  }
  return result;
}

template <typename Probe, typename Scratch>
std::vector<VertexId> sample_rrr_lt(const CSRGraph& reverse, VertexId root,
                                    Xoshiro256& rng, Scratch& scratch) {
  scratch.visited.new_round();

  std::vector<VertexId> result;
  result.push_back(root);
  scratch.visited.mark(root);

  VertexId current = root;
  for (;;) {
    const auto neighbors = reverse.neighbors(current);
    const auto weights = reverse.weights(current);
    if (neighbors.empty()) break;
    // Pick in-neighbor i with probability weights[i]; the leftover
    // probability mass (1 - Σ w) selects "no activator".
    const double r = rng.next_double();
    double cumulative = 0.0;
    VertexId picked = kInvalidVertex;
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      cumulative += weights[i];
      if (r < cumulative) {
        picked = neighbors[i];
        break;
      }
    }
    if (picked == kInvalidVertex) break;  // activated by no one
    Probe::on_visited_access(picked);
    const bool seen = scratch.visited.visited(picked);
    if (seen) break;  // walk closed a cycle
    Probe::on_visited_access(picked);
    scratch.visited.mark(picked);
    result.push_back(picked);
    current = picked;
  }
  return result;
}

}  // namespace eimm
