// Table IV reproduction: L1+L2 cache misses of the
// Find_Most_Influential_Set kernel, Ripples strategy vs EfficientIMM
// (paper: 22.4x - 357.4x reduction on 5 datasets).
//
// Hardware PMUs are replaced by the trace-driven cache model
// (src/cachesim): the two kernels are templated on a memory-access
// policy, so the *identical* kernel code is replayed through per-thread
// simulated L1/L2 hierarchies (32 KiB / 512 KiB, 8-way, 64 B lines —
// the paper's EPYC 7763). See DESIGN.md §2 for what the model does and
// does not capture.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "cachesim/harness.hpp"
#include "common.hpp"
#include "rrr/generate.hpp"
#include "support/table.hpp"

int main() {
  using namespace eimm;
  using namespace eimm::bench;

  const BenchConfig config = load_config();
  print_banner("Table IV: simulated L1+L2 misses in the selection kernel",
               config);

  // Paper's Table IV datasets and reduction factors, for the side-by-side.
  const struct {
    const char* name;
    double paper_reduction;
  } rows[] = {{"com-Amazon", 25.94},
              {"web-Google", 22.40},
              {"soc-Pokec", 93.14},
              {"com-YouTube", 357.39},
              {"com-LJ", 100.82}};

  const int threads = std::min(8, config.max_threads);
  constexpr std::size_t kSets = 300;

  AsciiTable table({"Graph", "Ripples (L1+L2)", "EfficientIMM (L1+L2)",
                    "Reduction", "Paper reduction"});
  for (const auto& row : rows) {
    const DiffusionGraph g = load_workload(
        config, row.name, DiffusionModel::kIndependentCascade);
    // Fixed-size IC pool so both kernels replay the same sketch data.
    RRRPool pool(g.num_vertices());
    pool.resize(kSets);
    SamplerScratch scratch(g.num_vertices());
    for (std::size_t i = 0; i < kSets; ++i) {
      pool[i] = RRRSet::make_vector(
          sample_rrr(g.reverse, DiffusionModel::kIndependentCascade,
                     config.rng_seed, i, scratch));
    }

    const auto ripples =
        run_traced_selection(Engine::kRipples, pool, config.k, threads);
    const auto efficient =
        run_traced_selection(Engine::kEfficient, pool, config.k, threads);
    const double reduction =
        static_cast<double>(ripples.cache.l1_plus_l2_misses()) /
        static_cast<double>(
            std::max<std::uint64_t>(1, efficient.cache.l1_plus_l2_misses()));
    table.new_row()
        .add(row.name)
        .add(ripples.cache.l1_plus_l2_misses())
        .add(efficient.cache.l1_plus_l2_misses())
        .add(format_speedup(reduction, 2))
        .add(format_speedup(row.paper_reduction, 2));
    std::printf("  traced %-12s ripples=%llu efficient=%llu (%d threads)\n",
                row.name,
                static_cast<unsigned long long>(
                    ripples.cache.l1_plus_l2_misses()),
                static_cast<unsigned long long>(
                    efficient.cache.l1_plus_l2_misses()),
                threads);
  }
  std::printf("\n");
  table.set_title("Table IV (trace-driven cache model, " +
                  std::to_string(threads) + " threads)");
  table.print(std::cout);
  std::printf(
      "\nShape check: EfficientIMM's RRR-partitioned kernel takes an order\n"
      "of magnitude fewer combined misses; the exact factor depends on\n"
      "pool size, skew, and thread count, as in the paper (22x-357x).\n");
  return 0;
}
