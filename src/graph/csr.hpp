// Compressed Sparse Row graph — the project's only graph container.
//
// The same structure stores either orientation: the diffusion engines work
// on the *transpose* (in-edges, for reverse-reachability sampling) while
// the Monte-Carlo validator works on the forward graph. transpose() maps
// between them and preserves edge weights.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace eimm {

class CSRGraph {
 public:
  CSRGraph() = default;

  /// Takes ownership of prebuilt CSR arrays. offsets.size() == n+1,
  /// targets.size() == offsets.back(), weights empty or same size as
  /// targets. Validated with EIMM_CHECK.
  CSRGraph(std::vector<EdgeId> offsets, std::vector<VertexId> targets,
           std::vector<float> weights = {});

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return offsets_.empty() ? 0 : offsets_.back();
  }
  [[nodiscard]] bool has_weights() const noexcept { return !weights_.empty(); }

  [[nodiscard]] EdgeId degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbors of v (out-neighbors in the stored orientation).
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  /// Edge weights of v's adjacency, parallel to neighbors(v).
  [[nodiscard]] std::span<const float> weights(VertexId v) const noexcept {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// Mutable weights, used by the diffusion-model weight assigners.
  [[nodiscard]] std::span<float> mutable_weights(VertexId v) noexcept {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// Raw arrays, used by the NUMA placement layer and serialization.
  [[nodiscard]] const std::vector<EdgeId>& offsets() const noexcept { return offsets_; }
  [[nodiscard]] const std::vector<VertexId>& targets() const noexcept { return targets_; }
  [[nodiscard]] const std::vector<float>& raw_weights() const noexcept { return weights_; }

  /// Allocates a weight per edge (initialized to `fill`) if absent.
  void ensure_weights(float fill = 1.0f);

  /// Returns the transposed graph (u->v becomes v->u), weights preserved.
  [[nodiscard]] CSRGraph transpose() const;

  /// Approximate heap footprint in bytes (for memory reporting).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept;

 private:
  std::vector<EdgeId> offsets_;
  std::vector<VertexId> targets_;
  std::vector<float> weights_;
};

/// A forward/transpose pair sharing one logical graph; the unit every
/// engine consumes. `forward` is the influence direction (u -> v means u
/// can influence v), `reverse` its transpose.
struct DiffusionGraph {
  CSRGraph forward;
  CSRGraph reverse;

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return forward.num_vertices();
  }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return forward.num_edges();
  }

  /// Builds the pair from a forward graph.
  static DiffusionGraph from_forward(CSRGraph g) {
    DiffusionGraph dg;
    dg.reverse = g.transpose();
    dg.forward = std::move(g);
    return dg;
  }
};

}  // namespace eimm
