#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include "support/macros.hpp"

namespace eimm {
namespace {

TEST(Builder, InfersVertexCountFromMaxId) {
  const CSRGraph g = build_csr({{0, 5}, {3, 1}});
  EXPECT_EQ(g.num_vertices(), 6u);
}

TEST(Builder, RemovesSelfLoopsByDefault) {
  const CSRGraph g = build_csr({{0, 0}, {0, 1}, {1, 1}}, 2);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
}

TEST(Builder, KeepsSelfLoopsWhenAsked) {
  BuildOptions opts;
  opts.remove_self_loops = false;
  const CSRGraph g = build_csr({{0, 0}, {0, 1}}, 2, opts);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Builder, DeduplicatesParallelEdges) {
  const CSRGraph g = build_csr({{0, 1}, {0, 1}, {0, 1}}, 2);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Builder, DedupKeepsFirstWeight) {
  const CSRGraph g = build_csr({{0, 1, 0.3f}, {0, 1, 0.9f}}, 2);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_FLOAT_EQ(g.weights(0)[0], 0.3f);
}

TEST(Builder, SymmetrizeAddsReverseEdges) {
  BuildOptions opts;
  opts.symmetrize = true;
  const CSRGraph g = build_csr({{0, 1}, {1, 2}}, 3, opts);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(1), 2u);  // 1 -> 0 and 1 -> 2
}

TEST(Builder, SymmetrizePreservesWeight) {
  BuildOptions opts;
  opts.symmetrize = true;
  const CSRGraph g = build_csr({{0, 1, 0.7f}}, 2, opts);
  EXPECT_FLOAT_EQ(g.weights(0)[0], 0.7f);
  EXPECT_FLOAT_EQ(g.weights(1)[0], 0.7f);
}

TEST(Builder, CompactIdsDropsGaps) {
  BuildOptions opts;
  opts.compact_ids = true;
  const CSRGraph g = build_csr({{100, 500}, {500, 9000}}, 0, opts);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Builder, AdjacencySorted) {
  const CSRGraph g = build_csr({{0, 9}, {0, 3}, {0, 7}, {0, 1}}, 10);
  const auto n = g.neighbors(0);
  for (std::size_t i = 1; i < n.size(); ++i) EXPECT_LT(n[i - 1], n[i]);
}

TEST(Builder, RejectsEdgeBeyondDeclaredCount) {
  EXPECT_THROW(build_csr({{0, 5}}, 3), CheckError);
}

TEST(Builder, EmptyEdgeListWithDeclaredVertices) {
  const CSRGraph g = build_csr({}, 4);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Builder, DiffusionGraphOrientationsMatch) {
  const auto dg = build_diffusion_graph({{0, 1}, {1, 2}, {2, 0}}, 3);
  EXPECT_EQ(dg.forward.num_edges(), dg.reverse.num_edges());
  // forward 0->1 implies reverse 1->0.
  EXPECT_EQ(dg.reverse.neighbors(1)[0], 0u);
}

}  // namespace
}  // namespace eimm
