// SelectionEngine routing coverage: the engine must reproduce the legacy
// kernels bit for bit across counter-shard counts and pin modes, honour
// the prebuilt-counter (kernel fusion) hand-off, and serve the store
// kernel with the same tie-breaks as the pool kernels.
#include "seedselect/engine.hpp"

#include <gtest/gtest.h>

#include "core/imm.hpp"
#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"
#include "test_util.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

RRRPool make_pool(std::size_t sets = 250) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.02, 17);
  return testing::sample_pool(g, DiffusionModel::kIndependentCascade,
                              sets, 777, /*adaptive=*/true);
}

TEST(SelectionEngine, ResolvesExplicitShardAndPinConfig) {
  SelectionEngineConfig config;
  config.counter_shards = 5;
  config.pin = PinMode::kNone;
  const SelectionEngine engine(config);
  EXPECT_EQ(engine.counter_shards(), 5);
  EXPECT_EQ(engine.pin_mode(), PinMode::kNone);
}

TEST(SelectionEngine, MatchesLegacyKernelForEveryShardCount) {
  const RRRPool pool = make_pool();
  SelectionOptions options;
  options.k = 10;

  CounterArray counters(pool.num_vertices());
  const auto legacy = efficient_select(pool, counters, options);

  for (const int shards : {1, 2, 3, 8}) {
    SelectionEngineConfig config;
    config.counter_shards = shards;
    config.pin = PinMode::kNone;
    const SelectionEngine engine(config);
    const auto result =
        engine.select(SelectionKernel::kEfficient, pool, options);
    EXPECT_EQ(result.seeds, legacy.seeds) << shards << " shards";
    EXPECT_EQ(result.marginal_coverage, legacy.marginal_coverage)
        << shards << " shards";
    EXPECT_EQ(result.covered_sets, legacy.covered_sets)
        << shards << " shards";
  }
}

TEST(SelectionEngine, PinModeNeverChangesTheSeeds) {
  const RRRPool pool = make_pool();
  SelectionOptions options;
  options.k = 8;

  CounterArray counters(pool.num_vertices());
  const auto legacy = efficient_select(pool, counters, options);

  for (const PinMode pin :
       {PinMode::kNone, PinMode::kAuto, PinMode::kCompact,
        PinMode::kSpread}) {
    SelectionEngineConfig config;
    config.counter_shards = 2;
    config.pin = pin;
    const SelectionEngine engine(config);
    const auto result =
        engine.select(SelectionKernel::kEfficient, pool, options);
    EXPECT_EQ(result.seeds, legacy.seeds)
        << "pin=" << to_string(pin);
  }
}

TEST(SelectionEngine, RipplesKernelRoutesThrough) {
  const RRRPool pool = make_pool();
  SelectionOptions options;
  options.k = 6;
  const auto legacy = ripples_select(pool, options);
  SelectionEngineConfig config;
  config.pin = PinMode::kNone;
  const SelectionEngine engine(config);
  const auto result =
      engine.select(SelectionKernel::kRipples, pool, options);
  EXPECT_EQ(result.seeds, legacy.seeds);
  EXPECT_EQ(result.covered_sets, legacy.covered_sets);
}

TEST(SelectionEngine, PrebuiltBaseSkipsTheInitialBuild) {
  // Build the fused base by hand, then check the engine's prebuilt path
  // matches a from-scratch selection for both counter layouts.
  const RRRPool pool = make_pool();
  CounterArray base(pool.num_vertices());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool[i].for_each([&](VertexId v) { base.increment(v); });
  }

  SelectionOptions options;
  options.k = 10;
  CounterArray scratch(pool.num_vertices());
  const auto reference = efficient_select(pool, scratch, options);

  for (const int shards : {1, 4}) {
    SelectionEngineConfig config;
    config.counter_shards = shards;
    config.pin = PinMode::kNone;
    const SelectionEngine engine(config);
    const auto result =
        engine.select(SelectionKernel::kEfficient, pool, options, &base);
    EXPECT_EQ(result.seeds, reference.seeds) << shards << " shards";
    EXPECT_EQ(result.covered_sets, reference.covered_sets)
        << shards << " shards";
  }
  // The base must survive the selection untouched (core/imm reuses it
  // across martingale rounds).
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) total += pool[i].size();
  EXPECT_EQ(base.total(), total);
}

TEST(SelectionEngine, StoreKernelMatchesPoolKernel) {
  // An unconstrained store query must reproduce the pool kernel's seed
  // sequence — the engine owns both, so this locks their tie-breaks
  // together.
  const RRRPool pool = make_pool(300);
  SelectionOptions options;
  options.k = 8;
  CounterArray counters(pool.num_vertices());
  const auto direct = efficient_select(pool, counters, options);

  const SketchStore store = SketchStore::from_pool(pool, 8, {});
  QueryOptions query;
  query.k = 8;
  const SelectionEngine engine;
  const QueryResult via_engine = engine.select(store, query);
  EXPECT_EQ(via_engine.seeds, direct.seeds);
  EXPECT_EQ(via_engine.marginal_coverage, direct.marginal_coverage);

  // And run_query (the serve entry point) is the same code path.
  const QueryResult via_serve = run_query(store, query);
  EXPECT_EQ(via_serve.seeds, via_engine.seeds);
}

TEST(SelectionEngine, StoreKernelValidatesArguments) {
  const RRRPool pool = make_pool(50);
  const SketchStore store = SketchStore::from_pool(pool, 4, {});
  const SelectionEngine engine;
  QueryOptions query;
  query.k = 0;
  EXPECT_THROW(engine.select(store, query), CheckError);
  query.k = 5;  // exceeds k_max
  EXPECT_THROW(engine.select(store, query), CheckError);
  query.k = 2;
  query.forbidden = {store.num_vertices()};
  EXPECT_THROW(engine.select(store, query), CheckError);
  query.forbidden.clear();
  query.candidates = {store.num_vertices() + 5};
  EXPECT_THROW(engine.select(store, query), CheckError);
}

}  // namespace
}  // namespace eimm
