// Fixed-capacity dynamic bitset — the dense RRR-set representation.
// O(1) membership; iteration is word-at-a-time with popcount/ctz.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bits.hpp"
#include "support/macros.hpp"

namespace eimm {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_(words_for_bits(bits), 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }

  void set(std::size_t i) noexcept {
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }
  void clear(std::size_t i) noexcept {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t c = 0;
    for (const std::uint64_t w : words_) c += static_cast<std::size_t>(popcount64(w));
    return c;
  }

  /// Zeroes all bits, keeping capacity.
  void reset() noexcept { std::fill(words_.begin(), words_.end(), 0); }

  /// Invokes fn(index) for every set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      for_each_set_bit(words_[w], w * 64, fn);
    }
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace eimm
