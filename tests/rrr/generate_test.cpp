#include "rrr/generate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"

namespace eimm {
namespace {

using testing::make_graph;
using testing::set_uniform_probability;

TEST(VisitScratch, MarksAndResets) {
  VisitScratch v(10);
  v.new_round();
  EXPECT_FALSE(v.visited(3));
  v.mark(3);
  EXPECT_TRUE(v.visited(3));
  v.new_round();
  EXPECT_FALSE(v.visited(3));
}

TEST(VisitScratch, ManyRoundsStayCorrect) {
  VisitScratch v(4);
  for (int round = 0; round < 1000; ++round) {
    v.new_round();
    EXPECT_FALSE(v.visited(0));
    v.mark(0);
    EXPECT_TRUE(v.visited(0));
    EXPECT_FALSE(v.visited(1));
  }
}

TEST(VisitScratch, EpochWraparoundClearsStaleStamps) {
  // The wrap hazard: a stamp written during one 2^32-round cycle could
  // alias the SAME epoch value in the next cycle and read as "visited"
  // for a round that never marked it. new_round() must detect the wrap,
  // do its one full clear, and restart at epoch 1 (0 stays the
  // never-marked sentinel).
  VisitScratch v(8);
  v.new_round();
  v.mark(2);  // stamped with epoch 1 — the value the wrap restarts at
  v.set_epoch_for_test(0xFFFFFFFFu);
  v.mark(5);  // stamped with the final epoch of the cycle
  EXPECT_TRUE(v.visited(5));

  v.new_round();  // 0xFFFFFFFF + 1 wraps to 0: full clear, epoch := 1
  EXPECT_EQ(v.epoch(), 1u);
  // Without the clear, vertex 2's stale epoch-1 stamp would alias the
  // restarted epoch and poison this round.
  EXPECT_FALSE(v.visited(2));
  EXPECT_FALSE(v.visited(5));

  // The structure keeps working normally after the wrap.
  v.mark(3);
  EXPECT_TRUE(v.visited(3));
  v.new_round();
  EXPECT_EQ(v.epoch(), 2u);
  EXPECT_FALSE(v.visited(3));
}

TEST(VisitScratch, EpochJumpSeamBehavesLikeEmptyRounds) {
  // set_epoch_for_test must be equivalent to consuming the skipped
  // epochs with empty rounds: marks from before the jump are invisible
  // after it (their stamp is a PAST epoch, not a future one).
  VisitScratch v(4);
  v.new_round();
  v.mark(1);
  v.set_epoch_for_test(12345);
  EXPECT_FALSE(v.visited(1));
  v.new_round();
  EXPECT_EQ(v.epoch(), 12346u);
  EXPECT_FALSE(v.visited(1));
}

TEST(SampleIC, ProbabilityOneCoversReverseReachableSet) {
  // Path 0 -> 1 -> 2 -> 3: the reverse-reachable set of 3 is everything.
  auto g = make_graph(gen_path(4));
  set_uniform_probability(g, 1.0f);
  SamplerScratch scratch(4);
  Xoshiro256 rng(1);
  auto set = sample_rrr_ic(g.reverse, 3, rng, scratch);
  std::sort(set.begin(), set.end());
  EXPECT_EQ(set, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(SampleIC, PathPrefixProperty) {
  // RRR(v) on a path with p=1 is exactly {0..v}.
  auto g = make_graph(gen_path(6));
  set_uniform_probability(g, 1.0f);
  SamplerScratch scratch(6);
  for (VertexId root = 0; root < 6; ++root) {
    Xoshiro256 rng(root);
    auto set = sample_rrr_ic(g.reverse, root, rng, scratch);
    EXPECT_EQ(set.size(), static_cast<std::size_t>(root) + 1);
    for (const VertexId v : set) EXPECT_LE(v, root);
  }
}

TEST(SampleIC, ProbabilityZeroIsRootOnly) {
  auto g = make_graph(gen_complete(8));
  set_uniform_probability(g, 0.0f);
  SamplerScratch scratch(8);
  Xoshiro256 rng(2);
  const auto set = sample_rrr_ic(g.reverse, 5, rng, scratch);
  EXPECT_EQ(set, (std::vector<VertexId>{5}));
}

TEST(SampleIC, RootAlwaysIncluded) {
  auto g = testing::make_weighted_graph(
      gen_erdos_renyi(50, 200, 3), DiffusionModel::kIndependentCascade);
  SamplerScratch scratch(50);
  for (VertexId root = 0; root < 50; root += 7) {
    Xoshiro256 rng(root);
    const auto set = sample_rrr_ic(g.reverse, root, rng, scratch);
    EXPECT_NE(std::find(set.begin(), set.end(), root), set.end());
  }
}

TEST(SampleIC, NoDuplicateMembers) {
  auto g = testing::make_weighted_graph(
      gen_erdos_renyi(100, 800, 5), DiffusionModel::kIndependentCascade);
  SamplerScratch scratch(100);
  Xoshiro256 rng(9);
  auto set = sample_rrr_ic(g.reverse, 10, rng, scratch);
  std::sort(set.begin(), set.end());
  EXPECT_EQ(std::adjacent_find(set.begin(), set.end()), set.end());
}

TEST(SampleLT, WalkOnPathReachesStart) {
  // Path with full in-weight: the reverse walk from v deterministically
  // reaches 0 (every vertex has exactly one in-neighbor, weight 1).
  auto g = make_graph(gen_path(5));
  set_uniform_probability(g, 1.0f);
  SamplerScratch scratch(5);
  Xoshiro256 rng(3);
  auto set = sample_rrr_lt(g.reverse, 4, rng, scratch);
  std::sort(set.begin(), set.end());
  EXPECT_EQ(set, (std::vector<VertexId>{0, 1, 2, 3, 4}));
}

TEST(SampleLT, CycleTerminatesOnRevisit) {
  // Cycle with weight 1: the walk must stop when it closes the loop.
  auto g = make_graph(gen_cycle(4));
  set_uniform_probability(g, 1.0f);
  SamplerScratch scratch(4);
  Xoshiro256 rng(3);
  const auto set = sample_rrr_lt(g.reverse, 0, rng, scratch);
  EXPECT_EQ(set.size(), 4u);  // visits each vertex once, then stops
}

TEST(SampleLT, SetsArePathsUnderNormalizedWeights) {
  // LT reverse sampling picks at most one in-neighbor per step, so the
  // set size is bounded by the walk length — and every member except the
  // root has exactly one "successor" in the walk. Just check size bounds
  // and membership sanity on a random graph.
  auto g = testing::make_weighted_graph(gen_erdos_renyi(200, 1200, 7),
                                        DiffusionModel::kLinearThreshold);
  SamplerScratch scratch(200);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto set = sample_rrr(g.reverse, DiffusionModel::kLinearThreshold,
                                99, i, scratch);
    EXPECT_GE(set.size(), 1u);
    EXPECT_LE(set.size(), 200u);
  }
}

TEST(SampleDispatch, DeterministicPerIndex) {
  auto g = testing::make_weighted_graph(
      gen_erdos_renyi(100, 700, 11), DiffusionModel::kIndependentCascade);
  SamplerScratch s1(100), s2(100);
  for (std::uint64_t i = 0; i < 20; ++i) {
    const auto a =
        sample_rrr(g.reverse, DiffusionModel::kIndependentCascade, 42, i, s1);
    const auto b =
        sample_rrr(g.reverse, DiffusionModel::kIndependentCascade, 42, i, s2);
    EXPECT_EQ(a, b) << "index " << i;
  }
}

TEST(SampleDispatch, IndependentOfScratchHistory) {
  auto g = testing::make_weighted_graph(
      gen_erdos_renyi(100, 700, 11), DiffusionModel::kIndependentCascade);
  // Fresh scratch vs heavily reused scratch must give identical sets.
  SamplerScratch reused(100);
  for (std::uint64_t i = 0; i < 50; ++i) {
    sample_rrr(g.reverse, DiffusionModel::kIndependentCascade, 1, i, reused);
  }
  SamplerScratch fresh(100);
  const auto a =
      sample_rrr(g.reverse, DiffusionModel::kIndependentCascade, 42, 7, reused);
  const auto b =
      sample_rrr(g.reverse, DiffusionModel::kIndependentCascade, 42, 7, fresh);
  EXPECT_EQ(a, b);
}

TEST(SampleDispatch, DifferentSeedsGiveDifferentPools) {
  auto g = testing::make_weighted_graph(
      gen_erdos_renyi(100, 700, 11), DiffusionModel::kIndependentCascade);
  SamplerScratch scratch(100);
  int differing = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    const auto a =
        sample_rrr(g.reverse, DiffusionModel::kIndependentCascade, 1, i, scratch);
    const auto b =
        sample_rrr(g.reverse, DiffusionModel::kIndependentCascade, 2, i, scratch);
    if (a != b) ++differing;
  }
  EXPECT_GT(differing, 10);
}

TEST(SampleDispatch, RequiresWeights) {
  auto g = make_graph(gen_path(4));  // builder assigns default weights...
  CSRGraph bare({0, 1}, {0});        // ...so use a raw unweighted graph
  SamplerScratch scratch(1);
  EXPECT_THROW(
      sample_rrr(bare, DiffusionModel::kIndependentCascade, 1, 0, scratch),
      CheckError);
  (void)g;
}

}  // namespace
}  // namespace eimm
