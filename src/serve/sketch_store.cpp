#include "serve/sketch_store.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <utility>

#include "diffusion/model.hpp"
#include "io/binary.hpp"
#include "runtime/thread_info.hpp"
#include "serve/query_engine.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

constexpr std::string_view kSnapshotMagic = "EIMMSKS";
constexpr std::uint32_t kSnapshotVersion = 1;
constexpr const char* kSnapshotWhat = "sketch-store snapshot";

}  // namespace

SketchStore SketchStore::build(const DiffusionGraph& graph,
                               const ImmOptions& options,
                               std::string workload_label) {
  PoolBuild pool_build = build_rrr_pool(graph, options, Engine::kEfficient);

  SketchStoreMeta meta;
  meta.workload = std::move(workload_label);
  meta.model = std::string(to_string(options.model));
  meta.rng_seed = options.rng_seed;
  meta.epsilon = options.epsilon;
  meta.theta = pool_build.theta;
  meta.theta_capped = pool_build.theta_capped;
  // Freezing (index build + default sequence) honours the same thread
  // cap as the sampling phase. No flatten happens here: from_build
  // adopts the build's storage and serves sketches in place.
  ThreadCountScope thread_scope(options.threads);
  return from_build(std::move(pool_build), options.k, std::move(meta));
}

SketchStore SketchStore::from_build(PoolBuild&& build, std::size_t k_max,
                                    SketchStoreMeta meta) {
  const RRRPoolView view = build.view();
  EIMM_CHECK(view.num_vertices() > 0, "cannot freeze a zero-vertex pool");
  EIMM_CHECK(k_max > 0, "build-time query cap must be positive");
  EIMM_CHECK(view.size() < std::numeric_limits<SketchId>::max(),
             "pool too large for 32-bit sketch ids");

  SketchStore store;
  store.num_vertices_ = view.num_vertices();
  store.num_sketches_ = view.size();
  store.k_max_ = std::min<std::uint64_t>(k_max, view.num_vertices());
  store.meta_ = std::move(meta);

  // Adopt the storage FIRST (pointers must target the store-owned
  // containers, not the about-to-die build), then wire one member
  // pointer per sketch. Vector-represented sets and arena runs are
  // already sorted contiguous images of themselves; only bitmap sets
  // need expanding, into one shared side array.
  const std::size_t count = store.num_sketches_;
  store.sketch_offsets_.resize(count + 1);
  store.sketch_offsets_[0] = 0;
  store.entry_ptrs_.assign(count, nullptr);
  if (build.segmented) {
    store.backing_segments_ = std::move(build.segments);
    for (std::size_t s = 0; s < count; ++s) {
      const std::span<const VertexId> run = store.backing_segments_.run(s);
      store.sketch_offsets_[s + 1] = store.sketch_offsets_[s] + run.size();
      store.entry_ptrs_[s] = run.data();
    }
  } else {
    store.backing_pool_ = std::move(build.pool);
    std::uint64_t bitmap_vertices = 0;
    for (std::size_t s = 0; s < count; ++s) {
      const RRRSet& set = store.backing_pool_[s];
      store.sketch_offsets_[s + 1] = store.sketch_offsets_[s] + set.size();
      if (set.repr() == RRRRepr::kBitmap) bitmap_vertices += set.size();
    }
    // Reserve the exact expansion size up front: entry pointers go live
    // as we fill, so the array must never reallocate.
    store.bitmap_expansion_.resize(bitmap_vertices);
    std::uint64_t cursor = 0;
    for (std::size_t s = 0; s < count; ++s) {
      const RRRSet& set = store.backing_pool_[s];
      if (set.repr() == RRRRepr::kVector) {
        store.entry_ptrs_[s] = set.vertices().data();
      } else {
        store.entry_ptrs_[s] = store.bitmap_expansion_.data() + cursor;
        set.for_each([&](VertexId v) {
          store.bitmap_expansion_[cursor++] = v;
        });
      }
    }
  }
  store.flat_ = false;
  store.finalize();
  return store;
}

SketchStore SketchStore::from_pool(const RRRPool& pool, std::size_t k_max,
                                   SketchStoreMeta meta) {
  EIMM_CHECK(pool.num_vertices() > 0, "cannot freeze a zero-vertex pool");
  EIMM_CHECK(k_max > 0, "build-time query cap must be positive");
  EIMM_CHECK(pool.size() <
                 std::numeric_limits<SketchId>::max(),
             "pool too large for 32-bit sketch ids");

  SketchStore store;
  store.num_vertices_ = pool.num_vertices();
  store.num_sketches_ = pool.size();
  // Greedy selection can never return more than |V| seeds, so a cap
  // above that is meaningless — clamping keeps k_max ≤ |V| a snapshot
  // invariant load() can enforce against corrupt files.
  store.k_max_ = std::min<std::uint64_t>(k_max, pool.num_vertices());
  store.meta_ = std::move(meta);

  FlatPool flat = pool.flatten();
  store.sketch_offsets_ = std::move(flat.offsets);
  store.sketch_vertices_ = std::move(flat.vertices);
  store.flat_ = true;
  store.finalize();
  return store;
}

void SketchStore::finalize() {
  // Inverted index by counting sort: degree histogram → prefix sum →
  // fill in sketch order, which leaves each vertex's covering list
  // sorted by sketch id. Derived deterministically from the sketch
  // members both at build and at load — the snapshot never carries it,
  // so the two indexes cannot disagree no matter what the file contains.
  // Reads through sketch(), so flat and zero-copy backings produce the
  // identical index.
  const VertexId n = num_vertices_;
  node_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::uint64_t s = 0; s < num_sketches_; ++s) {
    for (const VertexId v : sketch(static_cast<SketchId>(s))) {
      ++node_offsets_[static_cast<std::size_t>(v) + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    node_offsets_[v + 1] += node_offsets_[v];
  }
  node_sketches_.resize(sketch_offsets_.back());
  std::vector<std::uint64_t> cursor(node_offsets_.begin(),
                                    node_offsets_.end() - 1);
  for (std::uint64_t s = 0; s < num_sketches_; ++s) {
    for (const VertexId v : sketch(static_cast<SketchId>(s))) {
      node_sketches_[cursor[v]++] = static_cast<SketchId>(s);
    }
  }

  // Precompute the unconstrained greedy sequence once; top-k queries for
  // any k ≤ k_max become prefix reads. Uses the same kernel select()
  // runs, so the cached and live paths cannot drift apart.
  QueryOptions defaults;
  defaults.k = k_max_;
  QueryResult seq = run_query(*this, defaults);
  default_seeds_ = std::move(seq.seeds);
  default_marginals_ = std::move(seq.marginal_coverage);
}

std::vector<VertexId> SketchStore::assemble_payload() const {
  std::vector<VertexId> payload(sketch_offsets_.back());
#pragma omp parallel for schedule(dynamic, 64)
  for (std::uint64_t s = 0; s < num_sketches_; ++s) {
    const std::span<const VertexId> members =
        sketch(static_cast<SketchId>(s));
    std::copy(members.begin(), members.end(),
              payload.begin() +
                  static_cast<std::ptrdiff_t>(sketch_offsets_[s]));
  }
  return payload;
}

void SketchStore::materialize_flat() {
  if (flat_) return;
  sketch_vertices_ = assemble_payload();
  flat_ = true;
  // The backing storage is now redundant; release it so a materialized
  // store costs the same as a loaded one.
  entry_ptrs_ = {};
  backing_pool_ = RRRPool(num_vertices_);
  backing_segments_ = SegmentedPool();
  bitmap_expansion_ = {};
}

std::uint64_t SketchStore::memory_bytes() const noexcept {
  return sketch_offsets_.capacity() * sizeof(std::uint64_t) +
         sketch_vertices_.capacity() * sizeof(VertexId) +
         entry_ptrs_.capacity() * sizeof(const VertexId*) +
         backing_pool_.memory_bytes() + backing_segments_.mapped_bytes() +
         bitmap_expansion_.capacity() * sizeof(VertexId) +
         node_offsets_.capacity() * sizeof(std::uint64_t) +
         node_sketches_.capacity() * sizeof(SketchId) +
         default_seeds_.capacity() * sizeof(VertexId) +
         default_marginals_.capacity() * sizeof(std::uint64_t);
}

void SketchStore::save(std::ostream& os) const {
  bin::write_header(os, kSnapshotMagic, kSnapshotVersion);
  bin::write_pod(os, num_vertices_);
  bin::write_pod(os, num_sketches_);
  bin::write_pod(os, k_max_);
  bin::write_string(os, meta_.workload);
  bin::write_string(os, meta_.model);
  bin::write_pod(os, meta_.rng_seed);
  bin::write_pod(os, meta_.epsilon);
  bin::write_pod(os, meta_.theta);
  bin::write_pod(os, static_cast<std::uint8_t>(meta_.theta_capped ? 1 : 0));
  // Primary data only: the inverted index and the default greedy
  // sequence are recomputed by load(), so no snapshot corruption can
  // make the derived state disagree with the sketches. This is the
  // point where a deferred-backing store finally pays the flatten — a
  // transient payload assembled from the in-place spans.
  bin::write_vec(os, sketch_offsets_);
  if (flat_) {
    bin::write_vec(os, sketch_vertices_);
  } else {
    bin::write_vec(os, assemble_payload());
  }
}

bool operator==(const SketchStore& a, const SketchStore& b) {
  if (a.num_vertices_ != b.num_vertices_ ||
      a.num_sketches_ != b.num_sketches_ || a.k_max_ != b.k_max_ ||
      !(a.meta_ == b.meta_) || a.sketch_offsets_ != b.sketch_offsets_) {
    return false;
  }
  for (std::uint64_t s = 0; s < a.num_sketches_; ++s) {
    const std::span<const VertexId> sa = a.sketch(static_cast<SketchId>(s));
    const std::span<const VertexId> sb = b.sketch(static_cast<SketchId>(s));
    if (!std::equal(sa.begin(), sa.end(), sb.begin(), sb.end())) {
      return false;
    }
  }
  return true;
}

void SketchStore::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  EIMM_CHECK(os.good(), "cannot open snapshot file for writing");
  save(os);
  EIMM_CHECK(os.good(), "snapshot write failed");
}

SketchStore SketchStore::load(std::istream& is) {
  bin::read_header(is, kSnapshotMagic, kSnapshotVersion, kSnapshotWhat);

  SketchStore store;
  bin::read_pod(is, store.num_vertices_, kSnapshotWhat);
  bin::read_pod(is, store.num_sketches_, kSnapshotWhat);
  bin::read_pod(is, store.k_max_, kSnapshotWhat);
  store.meta_.workload = bin::read_string(is, kSnapshotWhat);
  store.meta_.model = bin::read_string(is, kSnapshotWhat);
  bin::read_pod(is, store.meta_.rng_seed, kSnapshotWhat);
  bin::read_pod(is, store.meta_.epsilon, kSnapshotWhat);
  bin::read_pod(is, store.meta_.theta, kSnapshotWhat);
  std::uint8_t capped = 0;
  bin::read_pod(is, capped, kSnapshotWhat);
  store.meta_.theta_capped = capped != 0;
  store.sketch_offsets_ = bin::read_vec<std::uint64_t>(is, kSnapshotWhat);
  store.sketch_vertices_ = bin::read_vec<VertexId>(is, kSnapshotWhat);
  store.flat_ = true;

  // Structural validation of the primary data: a malformed snapshot must
  // fail loudly here, not as UB inside a query. Everything derived (the
  // inverted index, the default sequence) is rebuilt below from the
  // validated arrays, so no cross-index inconsistency can survive.
  EIMM_CHECK(store.num_vertices_ > 0, "snapshot holds a zero-vertex store");
  EIMM_CHECK(store.k_max_ > 0, "snapshot holds a zero query cap");
  EIMM_CHECK(store.k_max_ <= store.num_vertices_,
             "snapshot query cap exceeds the vertex count");
  EIMM_CHECK(store.num_sketches_ <
                 std::numeric_limits<SketchId>::max(),
             "snapshot sketch count overflows 32-bit sketch ids");
  EIMM_CHECK(store.sketch_offsets_.size() == store.num_sketches_ + 1,
             "snapshot sketch offsets inconsistent with sketch count");
  EIMM_CHECK(store.sketch_offsets_.front() == 0 &&
                 store.sketch_offsets_.back() ==
                     store.sketch_vertices_.size(),
             "snapshot sketch offsets do not span the vertex payload");
  for (std::size_t i = 1; i < store.sketch_offsets_.size(); ++i) {
    EIMM_CHECK(store.sketch_offsets_[i] >= store.sketch_offsets_[i - 1],
               "snapshot sketch offsets decrease");
  }
  for (std::uint64_t s = 0; s < store.num_sketches_; ++s) {
    for (std::uint64_t i = store.sketch_offsets_[s];
         i < store.sketch_offsets_[s + 1]; ++i) {
      EIMM_CHECK(store.sketch_vertices_[i] < store.num_vertices_,
                 "snapshot sketch member out of range");
      // Strictly ascending runs are the sketch() contract — and rule out
      // duplicate members, which would double-count coverage.
      EIMM_CHECK(i == store.sketch_offsets_[s] ||
                     store.sketch_vertices_[i - 1] < store.sketch_vertices_[i],
                 "snapshot sketch members not strictly ascending");
    }
  }
  try {
    store.finalize();
  } catch (const std::bad_alloc&) {
    // A corrupt num_vertices field can pass the structural checks (no
    // members need exist to exceed it) yet demand an absurd index
    // allocation — keep the fail-loudly contract.
    EIMM_CHECK(false, "snapshot vertex count implausibly large");
  }
  return store;
}

SketchStore SketchStore::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EIMM_CHECK(is.good(), "cannot open snapshot file");
  return load(is);
}

}  // namespace eimm
