#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace eimm {

AsciiTable& AsciiTable::add(double v, int precision) {
  return add(format_double(v, precision));
}

AsciiTable& AsciiTable::add(std::uint64_t v) {
  return add(std::to_string(v));
}

AsciiTable& AsciiTable::add(std::int64_t v) { return add(std::to_string(v)); }

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title_.empty()) os << "## " << title_ << "\n\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << '|';
  for (const std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  os.flush();
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f %s", v, units[u]);
  return buf;
}

std::string format_speedup(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fx", precision, ratio);
  return buf;
}

}  // namespace eimm
