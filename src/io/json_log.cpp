#include "io/json_log.hpp"

#include <filesystem>
#include <fstream>
#include <functional>

#include "support/json.hpp"
#include "support/macros.hpp"

namespace eimm {

void write_experiment_json(std::ostream& os, const ExperimentRecord& r) {
  JsonWriter w(os);
  w.begin_object()
      .kv("Input", r.dataset)
      .kv("Algorithm", r.algorithm)
      .kv("DiffusionModel", r.diffusion)
      .kv("NumThreads", static_cast<std::int64_t>(r.threads))
      .kv("K", static_cast<std::int64_t>(r.k))
      .kv("Epsilon", r.epsilon)
      .kv("RngSeed", r.rng_seed)
      .kv("Total", r.total_seconds)
      .kv("GenerateRRRSets", r.sampling_seconds)
      .kv("FindMostInfluentialSet", r.selection_seconds)
      .kv("NumRRRSets", r.num_rrr_sets)
      .kv("RRRSetMemoryBytes", r.rrr_memory_bytes);
  w.key("Seeds").begin_array();
  for (const VertexId s : r.seeds) w.value(static_cast<std::uint64_t>(s));
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_serve_bench_json(std::ostream& os,
                            const std::vector<ServeBenchResult>& results) {
  JsonWriter w(os);
  w.begin_object().kv("Bench", "serve_throughput");
  w.key("Results").begin_array();
  for (const ServeBenchResult& r : results) {
    w.begin_object()
        .kv("Workload", r.workload)
        .kv("Threads", r.threads)
        .kv("QueriesPerSecond", r.queries_per_second)
        .kv("BuildSeconds", r.build_seconds)
        .end_object();
  }
  w.end_array().end_object();
  os << '\n';
}

std::string write_serve_bench_json_file(
    const std::string& path, const std::vector<ServeBenchResult>& results) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream os(path);
  EIMM_CHECK(os.good(), "cannot open bench result file for writing");
  write_serve_bench_json(os, results);
  EIMM_CHECK(os.good(), "bench result write failed");
  return path;
}

void write_sharded_bench_json(std::ostream& os, int numa_domains,
                              const std::vector<ShardedBenchResult>& results) {
  JsonWriter w(os);
  w.begin_object()
      .kv("Bench", "sharded_sampling")
      .kv("NumaDomains", static_cast<std::int64_t>(numa_domains));
  w.key("Results").begin_array();
  for (const ShardedBenchResult& r : results) {
    w.begin_object()
        .kv("Workload", r.workload)
        .kv("Shards", r.shards)
        .kv("Threads", r.threads)
        .kv("SamplingSeconds", r.sampling_seconds)
        .kv("SetsPerSecond", r.sets_per_second)
        .kv("NumRRRSets", r.num_rrr_sets)
        .kv("PoolMatchesUnsharded", r.pool_matches_unsharded)
        .end_object();
  }
  w.end_array().end_object();
  os << '\n';
}

void write_fused_bench_json(std::ostream& os, int numa_domains,
                            const std::vector<FusedBenchResult>& results) {
  JsonWriter w(os);
  w.begin_object()
      .kv("Bench", "fused_sampling")
      .kv("NumaDomains", static_cast<std::int64_t>(numa_domains));
  w.key("Results").begin_array();
  for (const FusedBenchResult& r : results) {
    w.begin_object()
        .kv("Workload", r.workload)
        .kv("Model", r.model)
        .kv("Shards", r.shards)
        .kv("Threads", r.threads)
        .kv("NumRRRSets", r.num_rrr_sets)
        .kv("ScalarSeconds", r.scalar_seconds)
        .kv("FusedSeconds", r.fused_seconds)
        .kv("ScalarSetsPerSecond", r.scalar_sets_per_second)
        .kv("FusedSetsPerSecond", r.fused_sets_per_second)
        .kv("Speedup", r.speedup)
        .kv("SpreadRatio", r.spread_ratio)
        .kv("SpreadWithinTolerance", r.spread_within_tolerance)
        .end_object();
  }
  w.end_array().end_object();
  os << '\n';
}

std::string write_fused_bench_json_file(
    const std::string& path, int numa_domains,
    const std::vector<FusedBenchResult>& results) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream os(path);
  EIMM_CHECK(os.good(), "cannot open bench result file for writing");
  write_fused_bench_json(os, numa_domains, results);
  EIMM_CHECK(os.good(), "bench result write failed");
  return path;
}

std::string write_sharded_bench_json_file(
    const std::string& path, int numa_domains,
    const std::vector<ShardedBenchResult>& results) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream os(path);
  EIMM_CHECK(os.good(), "cannot open bench result file for writing");
  write_sharded_bench_json(os, numa_domains, results);
  EIMM_CHECK(os.good(), "bench result write failed");
  return path;
}

void write_counter_bench_json(std::ostream& os, int numa_domains,
                              const std::vector<CounterBenchResult>& results) {
  JsonWriter w(os);
  w.begin_object()
      .kv("Bench", "micro_counters")
      .kv("NumaDomains", static_cast<std::int64_t>(numa_domains));
  w.key("Results").begin_array();
  for (const CounterBenchResult& r : results) {
    w.begin_object()
        .kv("Layout", r.layout)
        .kv("Shards", r.shards)
        .kv("Threads", r.threads)
        .kv("UpdateSeconds", r.update_seconds)
        .kv("UpdatesPerSecond", r.updates_per_second)
        .kv("ArgmaxSeconds", r.argmax_seconds)
        .kv("MatchesFlat", r.matches_flat)
        .end_object();
  }
  w.end_array().end_object();
  os << '\n';
}

std::string write_counter_bench_json_file(
    const std::string& path, int numa_domains,
    const std::vector<CounterBenchResult>& results) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream os(path);
  EIMM_CHECK(os.good(), "cannot open bench result file for writing");
  write_counter_bench_json(os, numa_domains, results);
  EIMM_CHECK(os.good(), "bench result write failed");
  return path;
}

void write_pipeline_bench_json(
    std::ostream& os, int numa_domains,
    const std::vector<PipelineBenchResult>& results) {
  JsonWriter w(os);
  w.begin_object()
      .kv("Bench", "fused_pipeline")
      .kv("NumaDomains", static_cast<std::int64_t>(numa_domains));
  w.key("Results").begin_array();
  for (const PipelineBenchResult& r : results) {
    w.begin_object()
        .kv("Workload", r.workload)
        .kv("Path", r.path)
        .kv("Shards", r.shards)
        .kv("Threads", r.threads)
        .kv("TotalSeconds", r.total_seconds)
        .kv("SamplingSeconds", r.sampling_seconds)
        .kv("SelectionSeconds", r.selection_seconds)
        .kv("NumRRRSets", r.num_rrr_sets)
        .kv("StagedBytes", r.staged_bytes)
        .kv("MappedBytes", r.mapped_bytes)
        .kv("MergedBytes", r.merged_bytes)
        .kv("WorkspaceCounterAllocs", r.workspace_counter_allocs)
        .kv("SeedsMatchFlat", r.seeds_match_flat)
        .end_object();
  }
  w.end_array().end_object();
  os << '\n';
}

std::string write_pipeline_bench_json_file(
    const std::string& path, int numa_domains,
    const std::vector<PipelineBenchResult>& results) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream os(path);
  EIMM_CHECK(os.good(), "cannot open bench result file for writing");
  write_pipeline_bench_json(os, numa_domains, results);
  EIMM_CHECK(os.good(), "bench result write failed");
  return path;
}

void write_latency_bench_json(std::ostream& os,
                              const std::vector<LatencyBenchResult>& results) {
  JsonWriter w(os);
  w.begin_object().kv("Bench", "serve_latency");
  w.key("Results").begin_array();
  for (const LatencyBenchResult& r : results) {
    w.begin_object()
        .kv("Workload", r.workload)
        .kv("LoadMode", r.load_mode)
        .kv("ColdStartSeconds", r.cold_start_seconds)
        .kv("BytesMapped", r.bytes_mapped)
        .kv("BytesCopied", r.bytes_copied)
        .kv("OfferedQps", r.offered_qps)
        .kv("AchievedQps", r.achieved_qps)
        .kv("P50Ms", r.p50_ms)
        .kv("P99Ms", r.p99_ms)
        .kv("Requests", r.requests)
        .kv("Timeouts", r.timeouts)
        .kv("CacheHits", r.cache_hits)
        .end_object();
  }
  w.end_array().end_object();
  os << '\n';
}

std::string write_latency_bench_json_file(
    const std::string& path, const std::vector<LatencyBenchResult>& results) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream os(path);
  EIMM_CHECK(os.good(), "cannot open bench result file for writing");
  write_latency_bench_json(os, results);
  EIMM_CHECK(os.good(), "bench result write failed");
  return path;
}

namespace {

/// The shared histogram serialization of the metrics/serving writers.
void write_histogram_fields(JsonWriter& w,
                            const obs::HistogramSnapshot& histogram) {
  w.kv("Count", histogram.count)
      .kv("Sum", histogram.sum)
      .kv("Mean", histogram.mean())
      .kv("P50", histogram.quantile(0.5))
      .kv("P99", histogram.quantile(0.99));
  w.key("Buckets").begin_array();
  for (const std::uint64_t bucket : histogram.buckets) w.value(bucket);
  w.end_array();
}

void write_metric_entries(JsonWriter& w,
                          const obs::MetricsSnapshot& snapshot) {
  w.key("Metrics").begin_array();
  for (const obs::MetricValue& metric : snapshot.entries) {
    w.begin_object()
        .kv("Name", metric.name)
        .kv("Kind", obs::to_string(metric.kind));
    switch (metric.kind) {
      case obs::MetricKind::kCounter:
        w.kv("Value", metric.value);
        break;
      case obs::MetricKind::kGauge:
        w.kv("Value", static_cast<std::int64_t>(metric.gauge));
        break;
      case obs::MetricKind::kHistogram:
        write_histogram_fields(w, metric.histogram);
        break;
    }
    w.end_object();
  }
  w.end_array();
}

std::string write_json_file(const std::string& path,
                            const std::function<void(std::ostream&)>& body) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream os(path);
  EIMM_CHECK(os.good(), "cannot open metrics file for writing");
  body(os);
  EIMM_CHECK(os.good(), "metrics write failed");
  return path;
}

}  // namespace

void write_metrics_json(std::ostream& os,
                        const obs::MetricsSnapshot& snapshot) {
  JsonWriter w(os);
  w.begin_object().kv("Schema", "eimm-metrics-v1");
  write_metric_entries(w, snapshot);
  w.end_object();
  os << '\n';
}

std::string write_metrics_json_file(const std::string& path,
                                    const obs::MetricsSnapshot& snapshot) {
  return write_json_file(
      path, [&](std::ostream& os) { write_metrics_json(os, snapshot); });
}

void write_server_metrics_json(std::ostream& os,
                               const obs::MetricsSnapshot& snapshot,
                               const ServingStatsRecord& serving) {
  JsonWriter w(os);
  w.begin_object().kv("Schema", "eimm-metrics-v1");
  write_metric_entries(w, snapshot);
  w.key("Serving").begin_object();
  w.kv("Requests", serving.requests)
      .kv("Timeouts", serving.timeouts)
      .kv("Submitted", serving.submitted)
      .kv("CacheHits", serving.cache_hits)
      .kv("Rejected", serving.rejected)
      .kv("Batches", serving.batches)
      .kv("LargestBatch", serving.largest_batch)
      .kv("QueryCacheHits", serving.qcache_hits)
      .kv("QueryCacheMisses", serving.qcache_misses)
      .kv("QueryCacheEvictions", serving.qcache_evictions)
      .kv("QueryCacheEntries", serving.qcache_entries)
      .kv("Generation", serving.generation)
      .kv("Reloads", serving.reloads)
      .kv("FailedReloads", serving.failed_reloads);
  w.key("QueueWaitMicros").begin_object();
  write_histogram_fields(w, serving.queue_wait_us);
  w.end_object();
  w.key("BatchSize").begin_object();
  write_histogram_fields(w, serving.batch_size);
  w.end_object();
  w.key("ExecMicros").begin_object();
  write_histogram_fields(w, serving.exec_us);
  w.end_object();
  w.end_object();  // Serving
  w.end_object();
  os << '\n';
}

std::string write_server_metrics_json_file(
    const std::string& path, const obs::MetricsSnapshot& snapshot,
    const ServingStatsRecord& serving) {
  return write_json_file(path, [&](std::ostream& os) {
    write_server_metrics_json(os, snapshot, serving);
  });
}

void write_obs_overhead_json(
    std::ostream& os, const std::vector<ObsOverheadBenchResult>& results) {
  JsonWriter w(os);
  w.begin_object().kv("Bench", "obs_overhead");
  w.key("Results").begin_array();
  for (const ObsOverheadBenchResult& r : results) {
    w.begin_object()
        .kv("Workload", r.workload)
        .kv("Threads", r.threads)
        .kv("Reps", r.reps)
        .kv("UninstrumentedSeconds", r.uninstrumented_seconds)
        .kv("InstrumentedSeconds", r.instrumented_seconds)
        .kv("OverheadFraction", r.overhead_fraction)
        .kv("BudgetFraction", r.budget_fraction)
        .kv("TraceEvents", r.trace_events)
        .kv("MetricSetsTotal", r.metric_sets_total)
        .kv("WithinBudget", r.within_budget)
        .end_object();
  }
  w.end_array().end_object();
  os << '\n';
}

std::string write_obs_overhead_json_file(
    const std::string& path,
    const std::vector<ObsOverheadBenchResult>& results) {
  return write_json_file(path, [&](std::ostream& os) {
    write_obs_overhead_json(os, results);
  });
}

void write_compressed_bench_json(
    std::ostream& os, const std::vector<CompressedBenchResult>& results) {
  JsonWriter w(os);
  w.begin_object().kv("Bench", "compressed_pool");
  w.key("Results").begin_array();
  for (const CompressedBenchResult& r : results) {
    w.begin_object()
        .kv("Workload", r.workload)
        .kv("Backing", r.backing)
        .kv("Threads", r.threads)
        .kv("NumRRRSets", r.num_rrr_sets)
        .kv("PoolBytes", r.pool_bytes)
        .kv("PayloadBytes", r.payload_bytes)
        .kv("BytesRatio", r.bytes_ratio)
        .kv("EncodeSeconds", r.encode_seconds)
        .kv("SelectionSeconds", r.selection_seconds)
        .kv("SetsPerSecond", r.sets_per_second)
        .kv("Slowdown", r.slowdown)
        .kv("SeedsMatchFlat", r.seeds_match_flat)
        .end_object();
  }
  w.end_array().end_object();
  os << '\n';
}

std::string write_compressed_bench_json_file(
    const std::string& path,
    const std::vector<CompressedBenchResult>& results) {
  return write_json_file(path, [&](std::ostream& os) {
    write_compressed_bench_json(os, results);
  });
}

std::string write_experiment_json_file(const std::string& dir,
                                       const ExperimentRecord& record) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + record.dataset + "_" +
                           record.algorithm + "_" +
                           std::to_string(record.threads) + ".json";
  std::ofstream os(path);
  EIMM_CHECK(os.good(), "cannot open experiment log for writing");
  write_experiment_json(os, record);
  return path;
}

}  // namespace eimm
