// Property-style sweeps over the selection kernels' tunables: whatever
// the representation threshold, batch size, or scheduling mode, the
// greedy max-coverage output must not change — only its cost may.
#include <gtest/gtest.h>

#include <set>

#include "seedselect/select.hpp"
#include "test_util.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

RRRPool pool_with_threshold(double threshold) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.02, 31);
  RRRPool pool(g.num_vertices());
  pool.resize(250);
  SamplerScratch scratch(g.num_vertices());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    auto verts = sample_rrr(g.reverse, DiffusionModel::kIndependentCascade,
                            555, i, scratch);
    pool[i] = RRRSet::make_adaptive(std::move(verts), g.num_vertices(),
                                    threshold);
  }
  return pool;
}

class BitmapThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(BitmapThresholdSweep, SelectionInvariantUnderRepresentation) {
  const RRRPool reference_pool = pool_with_threshold(1.0);  // all vectors
  const RRRPool pool = pool_with_threshold(GetParam());

  SelectionOptions options;
  options.k = 10;
  CounterArray a(reference_pool.num_vertices());
  CounterArray b(pool.num_vertices());
  const auto reference = efficient_select(reference_pool, a, options);
  const auto variant = efficient_select(pool, b, options);
  EXPECT_EQ(variant.seeds, reference.seeds);
  EXPECT_EQ(variant.covered_sets, reference.covered_sets);
  EXPECT_EQ(variant.marginal_coverage, reference.marginal_coverage);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, BitmapThresholdSweep,
                         ::testing::Values(0.0,    // everything bitmap
                                           0.01, 0.03125, 0.1, 0.5));

class BatchSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchSizeSweep, SelectionInvariantUnderBatching) {
  const RRRPool pool = pool_with_threshold(kDefaultBitmapThreshold);
  SelectionOptions reference_options;
  reference_options.k = 8;
  reference_options.dynamic_balance = false;
  CounterArray a(pool.num_vertices());
  const auto reference = efficient_select(pool, a, reference_options);

  SelectionOptions options;
  options.k = 8;
  options.dynamic_balance = true;
  options.batch_size = GetParam();
  CounterArray b(pool.num_vertices());
  const auto variant = efficient_select(pool, b, options);
  EXPECT_EQ(variant.seeds, reference.seeds);
  EXPECT_EQ(variant.covered_sets, reference.covered_sets);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSizeSweep,
                         ::testing::Values(1, 3, 16, 64, 1024));

TEST(SelectionProperties, CoveredSetsMatchesIndependentUnionCount) {
  const RRRPool pool = pool_with_threshold(kDefaultBitmapThreshold);
  SelectionOptions options;
  options.k = 12;
  CounterArray counters(pool.num_vertices());
  const auto result = efficient_select(pool, counters, options);

  // Recount coverage from scratch: a set is covered iff it contains any
  // selected seed.
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (const VertexId seed : result.seeds) {
      if (pool[i].contains(seed)) {
        ++covered;
        break;
      }
    }
  }
  EXPECT_EQ(result.covered_sets, covered);
}

TEST(SelectionProperties, SumOfMarginalsEqualsCoveredSets) {
  const RRRPool pool = pool_with_threshold(kDefaultBitmapThreshold);
  SelectionOptions options;
  options.k = 12;
  CounterArray counters(pool.num_vertices());
  const auto result = efficient_select(pool, counters, options);
  std::uint64_t marginal_sum = 0;
  for (const std::uint64_t m : result.marginal_coverage) marginal_sum += m;
  EXPECT_EQ(marginal_sum, result.covered_sets);
}

TEST(SelectionProperties, SeedsAreDistinct) {
  const RRRPool pool = pool_with_threshold(kDefaultBitmapThreshold);
  SelectionOptions options;
  options.k = 20;
  CounterArray counters(pool.num_vertices());
  const auto result = efficient_select(pool, counters, options);
  const std::set<VertexId> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), result.seeds.size());
}

TEST(SelectionProperties, LargerKNeverCoversLess) {
  const RRRPool pool = pool_with_threshold(kDefaultBitmapThreshold);
  std::uint64_t previous = 0;
  for (const std::size_t k : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    SelectionOptions options;
    options.k = k;
    CounterArray counters(pool.num_vertices());
    const auto result = efficient_select(pool, counters, options);
    EXPECT_GE(result.covered_sets, previous) << "k=" << k;
    previous = result.covered_sets;
  }
}

class CounterShardSweep : public ::testing::TestWithParam<int> {};

TEST_P(CounterShardSweep, SelectionInvariantUnderCounterSharding) {
  // The sharded counter layout moves WHERE counter updates land, never
  // what the greedy picks: every shard count must reproduce the flat
  // kernel's seeds, marginals, and coverage bit for bit.
  const RRRPool pool = pool_with_threshold(kDefaultBitmapThreshold);
  SelectionOptions options;
  options.k = 10;
  CounterArray flat(pool.num_vertices());
  const auto reference = efficient_select(pool, flat, options);

  ShardedCounterArray sharded(pool.num_vertices(), GetParam());
  const auto variant =
      efficient_select_t<NullMem, ShardedCounterArray>(pool, sharded,
                                                       options);
  EXPECT_EQ(variant.seeds, reference.seeds);
  EXPECT_EQ(variant.marginal_coverage, reference.marginal_coverage);
  EXPECT_EQ(variant.covered_sets, reference.covered_sets);
  EXPECT_EQ(variant.rebuild_rounds, reference.rebuild_rounds);
}

INSTANTIATE_TEST_SUITE_P(Shards, CounterShardSweep,
                         ::testing::Values(1, 2, 3, 8));

TEST(SelectionProperties, ShardedCountersHonorEligibilityMask) {
  // Eligibility-masked arg-max over the sharded layout: same constrained
  // seed set as the flat reference, and the masked vertices never appear.
  const RRRPool pool = pool_with_threshold(kDefaultBitmapThreshold);
  SelectionOptions options;
  options.k = 8;
  std::vector<std::uint8_t> eligible(pool.num_vertices(), 1);
  // Mask out the unconstrained winners so the mask provably bites.
  {
    CounterArray probe(pool.num_vertices());
    const auto unconstrained = efficient_select(pool, probe, options);
    ASSERT_FALSE(unconstrained.seeds.empty());
    eligible[unconstrained.seeds.front()] = 0;
  }
  options.eligible = &eligible;

  CounterArray flat(pool.num_vertices());
  const auto reference = efficient_select(pool, flat, options);
  for (const int shards : {2, 4}) {
    ShardedCounterArray sharded(pool.num_vertices(), shards);
    const auto variant =
        efficient_select_t<NullMem, ShardedCounterArray>(pool, sharded,
                                                         options);
    EXPECT_EQ(variant.seeds, reference.seeds) << shards << " shards";
    EXPECT_EQ(variant.covered_sets, reference.covered_sets)
        << shards << " shards";
    for (const VertexId seed : variant.seeds) {
      EXPECT_EQ(eligible[seed], 1) << "masked vertex selected";
    }
  }
}

TEST(SelectionProperties, ShardedNonAdaptiveDecrementOnlyPathMatches) {
  // The decrement-only ablation (adaptive_update = false) exercises the
  // cross-replica decrement wrap-around on every round.
  const RRRPool pool = pool_with_threshold(kDefaultBitmapThreshold);
  SelectionOptions options;
  options.k = 10;
  options.adaptive_update = false;
  CounterArray flat(pool.num_vertices());
  const auto reference = efficient_select(pool, flat, options);
  ShardedCounterArray sharded(pool.num_vertices(), 3);
  const auto variant =
      efficient_select_t<NullMem, ShardedCounterArray>(pool, sharded,
                                                       options);
  EXPECT_EQ(variant.seeds, reference.seeds);
  EXPECT_EQ(variant.covered_sets, reference.covered_sets);
  EXPECT_EQ(variant.rebuild_rounds, 0u);
}

TEST(SelectionProperties, GreedyPrefixProperty) {
  // Greedy is prefix-stable: the first j seeds of a k-seed run equal the
  // full output of a j-seed run.
  const RRRPool pool = pool_with_threshold(kDefaultBitmapThreshold);
  SelectionOptions big;
  big.k = 12;
  CounterArray a(pool.num_vertices());
  const auto full = efficient_select(pool, a, big);
  for (const std::size_t j : {1ul, 4ul, 8ul}) {
    SelectionOptions small;
    small.k = j;
    CounterArray b(pool.num_vertices());
    const auto prefix = efficient_select(pool, b, small);
    ASSERT_LE(prefix.seeds.size(), full.seeds.size());
    for (std::size_t i = 0; i < prefix.seeds.size(); ++i) {
      EXPECT_EQ(prefix.seeds[i], full.seeds[i]) << "j=" << j << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace eimm
