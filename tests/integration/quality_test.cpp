// Approximation-quality validation: IMM promises spread within
// (1 - 1/e - ε) of optimal with high probability. On instances small
// enough to brute-force (or CELF-greedy), verify the engines actually
// deliver competitive spread under forward Monte-Carlo simulation.
#include <gtest/gtest.h>

#include "core/imm.hpp"
#include "graph/generators.hpp"
#include "simulate/greedy.hpp"
#include "simulate/spread.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

TEST(Quality, MatchesExhaustiveOptimalOnTinyGraph) {
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(16, 60, 5), DiffusionModel::kIndependentCascade);

  SpreadOptions spread_opt;
  spread_opt.num_samples = 4000;
  const auto optimal = exhaustive_optimal(
      g.forward, DiffusionModel::kIndependentCascade, 2, spread_opt);

  ImmOptions opt;
  opt.k = 2;
  opt.epsilon = 0.3;
  opt.model = DiffusionModel::kIndependentCascade;
  opt.rng_seed = 11;
  opt.max_rrr_sets = 2'000'000;
  const auto imm = run_efficient_imm(g, opt);

  const double imm_spread = estimate_spread(
      g.forward, DiffusionModel::kIndependentCascade, imm.seeds, spread_opt);
  // Theory: >= (1 - 1/e - eps) * OPT ≈ 0.33 * OPT. In practice IMM gets
  // much closer; assert a margin comfortably above the guarantee to
  // catch real regressions without flaking on MC noise.
  EXPECT_GE(imm_spread, 0.75 * optimal.spread)
      << "IMM=" << imm_spread << " OPT=" << optimal.spread;
}

TEST(Quality, CompetitiveWithCelfGreedyIC) {
  const auto g = testing::make_weighted_graph(
      gen_barabasi_albert(150, 2, 9), DiffusionModel::kIndependentCascade);

  SpreadOptions spread_opt;
  spread_opt.num_samples = 1000;
  const auto greedy = celf_greedy(
      g.forward, DiffusionModel::kIndependentCascade, 4, spread_opt);

  ImmOptions opt;
  opt.k = 4;
  opt.epsilon = 0.3;
  opt.model = DiffusionModel::kIndependentCascade;
  opt.rng_seed = 3;
  opt.max_rrr_sets = 2'000'000;
  const auto imm = run_efficient_imm(g, opt);
  const double imm_spread = estimate_spread(
      g.forward, DiffusionModel::kIndependentCascade, imm.seeds, spread_opt);

  EXPECT_GE(imm_spread, 0.85 * greedy.spread)
      << "IMM=" << imm_spread << " CELF=" << greedy.spread;
}

TEST(Quality, CompetitiveWithCelfGreedyLT) {
  const auto g = testing::make_weighted_graph(
      gen_watts_strogatz(120, 3, 0.2, 13), DiffusionModel::kLinearThreshold);

  SpreadOptions spread_opt;
  spread_opt.num_samples = 1000;
  const auto greedy = celf_greedy(g.forward, DiffusionModel::kLinearThreshold,
                                  4, spread_opt);

  ImmOptions opt;
  opt.k = 4;
  opt.epsilon = 0.3;
  opt.model = DiffusionModel::kLinearThreshold;
  opt.rng_seed = 29;
  opt.max_rrr_sets = 2'000'000;
  const auto imm = run_efficient_imm(g, opt);
  const double imm_spread = estimate_spread(
      g.forward, DiffusionModel::kLinearThreshold, imm.seeds, spread_opt);

  EXPECT_GE(imm_spread, 0.85 * greedy.spread)
      << "IMM=" << imm_spread << " CELF=" << greedy.spread;
}

TEST(Quality, EstimatedSpreadTracksSimulatedSpread) {
  // n * F(S) is an unbiased estimator of σ(S): check it lands close to
  // the forward Monte-Carlo measurement.
  const auto g = testing::make_weighted_graph(
      gen_erdos_renyi(400, 2400, 17), DiffusionModel::kIndependentCascade);
  ImmOptions opt;
  opt.k = 5;
  opt.epsilon = 0.3;
  opt.model = DiffusionModel::kIndependentCascade;
  opt.rng_seed = 41;
  opt.max_rrr_sets = 2'000'000;
  const auto imm = run_efficient_imm(g, opt);

  SpreadOptions spread_opt;
  spread_opt.num_samples = 2000;
  const double simulated = estimate_spread(
      g.forward, DiffusionModel::kIndependentCascade, imm.seeds, spread_opt);
  EXPECT_NEAR(imm.estimated_spread, simulated,
              0.15 * simulated + 5.0);
}

TEST(Quality, TighterEpsilonNeverHurtsMuch) {
  const auto g = testing::make_weighted_graph(
      gen_barabasi_albert(200, 2, 21), DiffusionModel::kIndependentCascade);
  SpreadOptions spread_opt;
  spread_opt.num_samples = 800;

  auto run_with_eps = [&](double eps) {
    ImmOptions opt;
    opt.k = 4;
    opt.epsilon = eps;
    opt.model = DiffusionModel::kIndependentCascade;
    opt.rng_seed = 8;
    opt.max_rrr_sets = 2'000'000;
    const auto r = run_efficient_imm(g, opt);
    return estimate_spread(g.forward, DiffusionModel::kIndependentCascade,
                           r.seeds, spread_opt);
  };
  const double loose = run_with_eps(0.5);
  const double tight = run_with_eps(0.2);
  EXPECT_GE(tight, 0.9 * loose);
}

}  // namespace
}  // namespace eimm
