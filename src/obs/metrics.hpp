// Process-wide metrics registry: counters, gauges, and fixed-layout
// log2-bucket histograms.
//
// Hot-path updates go to per-thread slabs of relaxed atomics — the same
// contention-avoidance design as runtime/ShardedCounterArray — so an
// instrumented sampling or selection loop never bounces a shared cache
// line. A snapshot merges every live (and retired) slab with a plain
// commutative sum, which makes the merge deterministic: the same set of
// updates always produces the same totals regardless of thread
// interleaving or join order.
//
// Handles are cheap value types obtained from the name-keyed factories
// (`counter("sampling.sets_total")`); registration is idempotent, so two
// call sites naming the same metric share one cell. All updates are
// gated on `metrics_enabled()` (env `EIMM_METRICS`, default on) and cost
// one predictable branch when disabled.
//
// `AtomicHistogram` is the shared-cell sibling used for per-instance
// serving stats (BatchingExecutor queue wait / batch size / execution
// time): same bucket layout, but one atomic array per instance and NOT
// gated by `metrics_enabled()` — the stats surface of a live server must
// answer even when process metrics are off.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace eimm::obs {

/// Number of buckets in every histogram. Bucket 0 holds exact zeros;
/// bucket b (b >= 1) holds values in [2^(b-1), 2^b), with the last
/// bucket absorbing everything above 2^(kHistogramBuckets-2).
inline constexpr std::size_t kHistogramBuckets = 48;

/// Log2 bucket index for a value (see kHistogramBuckets for the layout).
[[nodiscard]] constexpr std::size_t histogram_bucket(std::uint64_t value) noexcept {
  if (value == 0) return 0;
  std::size_t width = 0;
  while (value != 0) {
    value >>= 1;
    ++width;
  }
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

/// Inclusive lower bound of a bucket: 0 for bucket 0, else 2^(b-1).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_floor(std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

/// A merged, immutable view of one histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Linearly interpolated quantile estimate (q in [0, 1]) from the
  /// bucket boundaries; exact for bucket-0 (zero) values.
  [[nodiscard]] double quantile(double q) const noexcept;

  HistogramSnapshot& operator+=(const HistogramSnapshot& other) noexcept;
};

/// Metric kinds, used by snapshots and the JSON writers.
enum class MetricKind : int { kCounter = 0, kGauge = 1, kHistogram = 2 };

[[nodiscard]] std::string_view to_string(MetricKind kind) noexcept;

/// Whether registry updates are recorded. Seeded from EIMM_METRICS
/// (default true) on first use; settable for tests and benches.
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

/// Monotonically increasing event count (per-thread slab cells).
class Counter {
 public:
  void add(std::uint64_t delta = 1) const noexcept;

 private:
  friend Counter counter(std::string_view name);
  explicit Counter(std::uint32_t cell) noexcept : cell_(cell) {}
  std::uint32_t cell_;
};

/// Last-write-wins instantaneous value (single shared cell — gauges are
/// set from one place at a time, never from a hot loop).
class Gauge {
 public:
  void set(std::int64_t value) const noexcept;
  void add(std::int64_t delta) const noexcept;

 private:
  friend Gauge gauge(std::string_view name);
  explicit Gauge(std::uint32_t cell) noexcept : cell_(cell) {}
  std::uint32_t cell_;
};

/// Log2-bucket distribution (per-thread slab cells).
class Histogram {
 public:
  void observe(std::uint64_t value) const noexcept;

 private:
  friend Histogram histogram(std::string_view name);
  explicit Histogram(std::uint32_t cell) noexcept : cell_(cell) {}
  std::uint32_t cell_;
};

/// Registers (idempotently, by name) and returns a handle. A name must
/// keep one kind for the lifetime of the process; re-registering under a
/// different kind throws CheckError.
[[nodiscard]] Counter counter(std::string_view name);
[[nodiscard]] Gauge gauge(std::string_view name);
[[nodiscard]] Histogram histogram(std::string_view name);

/// One merged registry entry.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;     // counters
  std::int64_t gauge = 0;      // gauges
  HistogramSnapshot histogram; // histograms
};

/// A point-in-time merge of every slab, entries sorted by name.
struct MetricsSnapshot {
  std::vector<MetricValue> entries;

  /// Pointer into entries, or nullptr when the name is unregistered.
  [[nodiscard]] const MetricValue* find(std::string_view name) const noexcept;
};

/// Merges all per-thread slabs (including slabs of exited threads, which
/// the registry keeps alive) into a consistent-per-cell snapshot. Safe
/// to call while other threads update.
[[nodiscard]] MetricsSnapshot snapshot_metrics();

/// Zeroes every slab cell and gauge (registrations are kept). Test-only:
/// concurrent updates during reset may be lost.
void reset_metrics();

/// A single shared-cell histogram instance for object-scoped stats (not
/// in the registry, not gated by metrics_enabled()).
class AtomicHistogram {
 public:
  AtomicHistogram() noexcept = default;
  AtomicHistogram(const AtomicHistogram&) = delete;
  AtomicHistogram& operator=(const AtomicHistogram&) = delete;

  void observe(std::uint64_t value) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot out;
    out.count = count_.load(std::memory_order_relaxed);
    out.sum = sum_.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
};

}  // namespace eimm::obs
