#include "serve/sketch_store.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <utility>

#include "diffusion/model.hpp"
#include "io/binary.hpp"
#include "rrr/gap_codec.hpp"
#include "runtime/thread_info.hpp"
#include "serve/query_engine.hpp"
#include "support/crc32c.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

constexpr std::string_view kSnapshotMagic = "EIMMSKS";
constexpr std::uint32_t kSnapshotVersionV1 = 1;
constexpr std::uint32_t kSnapshotVersionV2 = 2;
constexpr std::uint32_t kSnapshotVersionV3 = 3;
constexpr std::uint32_t kSnapshotVersionV4 = 4;
constexpr std::uint32_t kAcceptedVersions[] = {kSnapshotVersionV1,
                                               kSnapshotVersionV2,
                                               kSnapshotVersionV3,
                                               kSnapshotVersionV4};
constexpr const char* kSnapshotWhat = "sketch-store snapshot";

// --- v2/v3 on-disk layout ------------------------------------------------
// magic(8) version(4) section_count(4) file_bytes(8), then section_count
// table entries of {u32 id, u32 reserved, u64 offset, u64 bytes}, then
// the sections themselves, each starting at a kSectionAlign-aligned file
// offset (zero-padded gaps). Section offsets are absolute, so an mmap of
// the whole file serves every array in place: page alignment makes the
// typed reinterpretation valid, and the byte lengths make truncation a
// section-table error instead of a mid-array surprise.
//
// v3 reuses the layout with 8 sections: the sketch-vertices section
// holds the gap-coded payload BYTES (u8, always plain varints on disk)
// and section 8 carries the per-sketch byte offsets. Everything else —
// including the derived arrays — is identical to v2.
//
// v4 keeps both layouts (7 sections = raw, 8 = compressed) and stamps
// the CRC32C of each section's payload into the table entry's reserved
// u32, so loaders can prove every byte they are about to serve.
enum SectionId : std::uint32_t {
  kSecMeta = 1,              // bin-encoded scalars + strings
  kSecSketchOffsets = 2,     // u64[num_sketches + 1] (member counts CSR)
  kSecSketchVertices = 3,    // v2: u32[total members]; v3: u8[payload]
  kSecNodeOffsets = 4,       // u64[num_vertices + 1]
  kSecNodeSketches = 5,      // u32[total members]
  kSecDefaultSeeds = 6,      // u32[default sequence length]
  kSecDefaultMarginals = 7,  // u64[default sequence length]
  kSecCompOffsets = 8,       // v3 only: u64[num_sketches + 1] byte CSR
};
constexpr std::uint32_t kSectionCountV2 = 7;
constexpr std::uint32_t kSectionCountV3 = 8;
constexpr std::uint64_t kSectionAlign = 4096;
constexpr std::uint64_t kSectionEntryBytes = 24;
constexpr std::uint64_t header_bytes(std::uint32_t section_count) {
  return 8 + 4 + 4 + 8 + section_count * kSectionEntryBytes;
}

constexpr const char* section_name(std::uint32_t id) {
  switch (id) {
    case kSecMeta: return "snapshot meta";
    case kSecSketchOffsets: return "sketch offsets";
    case kSecSketchVertices: return "sketch vertices";
    case kSecNodeOffsets: return "node offsets";
    case kSecNodeSketches: return "node sketches";
    case kSecDefaultSeeds: return "default seeds";
    case kSecDefaultMarginals: return "default marginals";
    case kSecCompOffsets: return "compressed offsets";
    default: return "unknown section";
  }
}

struct SectionEntry {
  std::uint32_t id = 0;
  std::uint32_t crc = 0;  // CRC32C of the section payload (v4; else 0)
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}

[[noreturn]] void fail_section(const char* reason, const char* section,
                               std::uint64_t offset) {
  throw bin::FormatError(std::string(reason) + " (section '" + section +
                             "') at byte offset " + std::to_string(offset) +
                             " of " + kSnapshotWhat,
                         section, offset);
}

/// Section count a version must declare: fixed for v2/v3; v4 serves
/// both layouts, so the declared count itself picks raw vs compressed.
std::uint32_t checked_section_count(std::uint32_t version,
                                    std::uint32_t declared) {
  const bool ok = version == kSnapshotVersionV4
                      ? (declared == kSectionCountV2 ||
                         declared == kSectionCountV3)
                      : declared == (version == kSnapshotVersionV3
                                         ? kSectionCountV3
                                         : kSectionCountV2);
  if (!ok) fail_section("wrong section count in", "section table", 12);
  return declared;
}

bool compressed_layout(std::uint32_t version, std::uint32_t section_count) {
  return version == kSnapshotVersionV3 ||
         (version == kSnapshotVersionV4 && section_count == kSectionCountV3);
}

/// Validates one parsed section table: expected ids in order, aligned,
/// ascending, in-bounds, gap-only overlap-free.
void check_section_table(const std::vector<SectionEntry>& table,
                         std::uint64_t file_bytes,
                         std::uint32_t expected_count) {
  if (table.size() != expected_count) {
    fail_section("wrong section count in", "section table", 12);
  }
  std::uint64_t prev_end = header_bytes(expected_count);
  for (std::size_t i = 0; i < table.size(); ++i) {
    const SectionEntry& s = table[i];
    const char* name = section_name(s.id);
    if (s.id != i + 1) fail_section("unexpected section id in", name, s.offset);
    if (s.offset % kSectionAlign != 0) {
      fail_section("misaligned section in", name, s.offset);
    }
    if (s.offset < prev_end || s.offset > file_bytes ||
        s.bytes > file_bytes - s.offset) {
      fail_section("section exceeds file in", name, s.offset);
    }
    prev_end = s.offset + s.bytes;
  }
  if (prev_end != file_bytes) {
    fail_section("trailing bytes after last section in", "section table",
                 prev_end);
  }
}

/// Serializes the meta fields with the bin primitives (shared by v1 and
/// the v2 meta section, which keeps the formats convertible).
void write_meta_fields(std::ostream& os, VertexId num_vertices,
                       std::uint64_t num_sketches, std::uint64_t k_max,
                       const SketchStoreMeta& meta) {
  bin::write_pod(os, num_vertices);
  bin::write_pod(os, num_sketches);
  bin::write_pod(os, k_max);
  bin::write_string(os, meta.workload);
  bin::write_string(os, meta.model);
  bin::write_pod(os, meta.rng_seed);
  bin::write_pod(os, meta.epsilon);
  bin::write_pod(os, meta.theta);
  bin::write_pod(os, static_cast<std::uint8_t>(meta.theta_capped ? 1 : 0));
}

void read_meta_fields(std::istream& is, VertexId& num_vertices,
                      std::uint64_t& num_sketches, std::uint64_t& k_max,
                      SketchStoreMeta& meta) {
  const char* what = "snapshot meta";
  bin::read_pod(is, num_vertices, what);
  bin::read_pod(is, num_sketches, what);
  bin::read_pod(is, k_max, what);
  meta.workload = bin::read_string(is, what);
  meta.model = bin::read_string(is, what);
  bin::read_pod(is, meta.rng_seed, what);
  bin::read_pod(is, meta.epsilon, what);
  bin::read_pod(is, meta.theta, what);
  std::uint8_t capped = 0;
  bin::read_pod(is, capped, what);
  meta.theta_capped = capped != 0;
}

/// Reads a raw (headerless) array section of exactly `bytes` bytes.
template <typename T>
std::vector<T> read_section_array(std::istream& is, std::uint64_t bytes,
                                  const char* section, std::uint64_t offset) {
  if (bytes % sizeof(T) != 0) {
    fail_section("section length not a multiple of the element size in",
                 section, offset);
  }
  std::vector<T> v;
  try {
    v.resize(bytes / sizeof(T));
  } catch (const std::exception&) {
    fail_section("implausible section length in", section, offset);
  }
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(bytes));
  if (!is.good()) fail_section("truncated", section, offset);
  return v;
}

/// Types one mapped section. Alignment is guaranteed by the table check
/// (kSectionAlign-aligned offsets) plus mmap's page-aligned base.
template <typename T>
std::span<const T> map_section(const MappedFile& map, const SectionEntry& s) {
  const char* name = section_name(s.id);
  if (s.bytes % sizeof(T) != 0) {
    fail_section("section length not a multiple of the element size in",
                 name, s.offset);
  }
  return {reinterpret_cast<const T*>(map.data() + s.offset),
          static_cast<std::size_t>(s.bytes / sizeof(T))};
}

}  // namespace

/// Deferred checksum work of a lazy v4 mmap load. The data pointers
/// reference mapping_ pages, which never relocate when the store moves.
struct SketchStore::PendingChecksums {
  struct Section {
    const char* name;
    std::uint64_t offset;
    std::uint64_t bytes;
    std::uint32_t expect;
    const std::uint8_t* data;
  };
  std::once_flag once;
  std::atomic<bool> verified{false};
  std::vector<Section> sections;
};

SketchStore SketchStore::build(const DiffusionGraph& graph,
                               const ImmOptions& options,
                               std::string workload_label) {
  PoolBuild pool_build = build_rrr_pool(graph, options, Engine::kEfficient);

  SketchStoreMeta meta;
  meta.workload = std::move(workload_label);
  meta.model = std::string(to_string(options.model));
  meta.rng_seed = options.rng_seed;
  meta.epsilon = options.epsilon;
  meta.theta = pool_build.theta;
  meta.theta_capped = pool_build.theta_capped;
  // Freezing (index build + default sequence) honours the same thread
  // cap as the sampling phase. No flatten happens here: from_build
  // adopts the build's storage and serves sketches in place.
  ThreadCountScope thread_scope(options.threads);
  return from_build(std::move(pool_build), options.k, std::move(meta));
}

SketchStore SketchStore::from_build(PoolBuild&& build, std::size_t k_max,
                                    SketchStoreMeta meta) {
  const RRRPoolView view = build.view();
  EIMM_CHECK(view.num_vertices() > 0, "cannot freeze a zero-vertex pool");
  EIMM_CHECK(k_max > 0, "build-time query cap must be positive");
  EIMM_CHECK(view.size() < std::numeric_limits<SketchId>::max(),
             "pool too large for 32-bit sketch ids");

  SketchStore store;
  store.num_vertices_ = view.num_vertices();
  store.num_sketches_ = view.size();
  store.k_max_ = std::min<std::uint64_t>(k_max, view.num_vertices());
  store.meta_ = std::move(meta);

  // Adopt the storage FIRST (pointers must target the store-owned
  // containers, not the about-to-die build), then wire one member
  // pointer per sketch. Vector-represented sets and arena runs are
  // already sorted contiguous images of themselves; only bitmap sets
  // need expanding, into one shared side array.
  const std::size_t count = store.num_sketches_;
  store.sketch_offsets_own_.resize(count + 1);
  store.sketch_offsets_own_[0] = 0;
  if (build.compressed) {
    // Adopt the gap-coded pool as-is (varint or Huffman): queries decode
    // on enumerate, so the serving RSS is the compressed footprint. The
    // member-count CSR is rebuilt from the slot counts; the byte CSR and
    // payload are served straight from the adopted pool.
    store.backing_cpool_ = std::move(build.cpool);
    store.compressed_ = true;
    const std::span<const std::uint32_t> counts = store.backing_cpool_.counts();
    for (std::size_t s = 0; s < count; ++s) {
      store.sketch_offsets_own_[s + 1] =
          store.sketch_offsets_own_[s] + counts[s];
    }
    store.comp_offsets_ = store.backing_cpool_.offsets();
    store.comp_payload_ = store.backing_cpool_.payload();
    store.sketch_offsets_ = store.sketch_offsets_own_;
    store.flat_ = false;
    store.finalize();
    return store;
  }
  store.entry_ptrs_.assign(count, nullptr);
  if (build.segmented) {
    store.backing_segments_ = std::move(build.segments);
    for (std::size_t s = 0; s < count; ++s) {
      const std::span<const VertexId> run = store.backing_segments_.run(s);
      store.sketch_offsets_own_[s + 1] =
          store.sketch_offsets_own_[s] + run.size();
      store.entry_ptrs_[s] = run.data();
    }
  } else {
    store.backing_pool_ = std::move(build.pool);
    std::uint64_t bitmap_vertices = 0;
    for (std::size_t s = 0; s < count; ++s) {
      const RRRSet& set = store.backing_pool_[s];
      store.sketch_offsets_own_[s + 1] =
          store.sketch_offsets_own_[s] + set.size();
      if (set.repr() == RRRRepr::kBitmap) bitmap_vertices += set.size();
    }
    // Reserve the exact expansion size up front: entry pointers go live
    // as we fill, so the array must never reallocate.
    store.bitmap_expansion_.resize(bitmap_vertices);
    std::uint64_t cursor = 0;
    for (std::size_t s = 0; s < count; ++s) {
      const RRRSet& set = store.backing_pool_[s];
      if (set.repr() == RRRRepr::kVector) {
        store.entry_ptrs_[s] = set.vertices().data();
      } else {
        store.entry_ptrs_[s] = store.bitmap_expansion_.data() + cursor;
        set.for_each([&](VertexId v) {
          store.bitmap_expansion_[cursor++] = v;
        });
      }
    }
  }
  store.sketch_offsets_ = store.sketch_offsets_own_;
  store.flat_ = false;
  store.finalize();
  return store;
}

SketchStore SketchStore::from_pool(const RRRPool& pool, std::size_t k_max,
                                   SketchStoreMeta meta) {
  EIMM_CHECK(pool.num_vertices() > 0, "cannot freeze a zero-vertex pool");
  EIMM_CHECK(k_max > 0, "build-time query cap must be positive");
  EIMM_CHECK(pool.size() <
                 std::numeric_limits<SketchId>::max(),
             "pool too large for 32-bit sketch ids");

  SketchStore store;
  store.num_vertices_ = pool.num_vertices();
  store.num_sketches_ = pool.size();
  // Greedy selection can never return more than |V| seeds, so a cap
  // above that is meaningless — clamping keeps k_max ≤ |V| a snapshot
  // invariant load() can enforce against corrupt files.
  store.k_max_ = std::min<std::uint64_t>(k_max, pool.num_vertices());
  store.meta_ = std::move(meta);

  FlatPool flat = pool.flatten();
  store.sketch_offsets_own_ = std::move(flat.offsets);
  store.sketch_vertices_own_ = std::move(flat.vertices);
  store.sketch_offsets_ = store.sketch_offsets_own_;
  store.sketch_vertices_ = store.sketch_vertices_own_;
  store.flat_ = true;
  store.finalize();
  return store;
}

void SketchStore::finalize() {
  // Inverted index by counting sort: degree histogram → prefix sum →
  // fill in sketch order, which leaves each vertex's covering list
  // sorted by sketch id. Derived deterministically from the sketch
  // members at build time (and carried verbatim in v2 snapshots, so a
  // v2 load skips this entirely — the O(index) cold start). Reads
  // through sketch(), so flat and zero-copy backings produce the
  // identical index.
  const VertexId n = num_vertices_;
  node_offsets_own_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::uint64_t s = 0; s < num_sketches_; ++s) {
    for_each_member(static_cast<SketchId>(s), [&](VertexId v) {
      ++node_offsets_own_[static_cast<std::size_t>(v) + 1];
    });
  }
  for (std::size_t v = 0; v < n; ++v) {
    node_offsets_own_[v + 1] += node_offsets_own_[v];
  }
  node_sketches_own_.resize(sketch_offsets_.back());
  std::vector<std::uint64_t> cursor(node_offsets_own_.begin(),
                                    node_offsets_own_.end() - 1);
  for (std::uint64_t s = 0; s < num_sketches_; ++s) {
    for_each_member(static_cast<SketchId>(s), [&](VertexId v) {
      node_sketches_own_[cursor[v]++] = static_cast<SketchId>(s);
    });
  }
  node_offsets_ = node_offsets_own_;
  node_sketches_ = node_sketches_own_;

  // Precompute the unconstrained greedy sequence once; top-k queries for
  // any k ≤ k_max become prefix reads. Uses the same kernel select()
  // runs, so the cached and live paths cannot drift apart.
  QueryOptions defaults;
  defaults.k = k_max_;
  QueryResult seq = run_query(*this, defaults);
  default_seeds_own_ = std::move(seq.seeds);
  default_marginals_own_ = std::move(seq.marginal_coverage);
  default_seeds_ = default_seeds_own_;
  default_marginals_ = default_marginals_own_;
}

void SketchStore::adopt_owned_views() {
  sketch_offsets_ = sketch_offsets_own_;
  sketch_vertices_ = sketch_vertices_own_;
  node_offsets_ = node_offsets_own_;
  node_sketches_ = node_sketches_own_;
  default_seeds_ = default_seeds_own_;
  default_marginals_ = default_marginals_own_;
  comp_offsets_ = comp_offsets_own_;
  comp_payload_ = comp_payload_own_;
}

std::vector<VertexId> SketchStore::assemble_payload() const {
  std::vector<VertexId> payload(sketch_offsets_.back());
#pragma omp parallel for schedule(dynamic, 64)
  for (std::uint64_t s = 0; s < num_sketches_; ++s) {
    auto out =
        payload.begin() + static_cast<std::ptrdiff_t>(sketch_offsets_[s]);
    for_each_member(static_cast<SketchId>(s), [&](VertexId v) { *out++ = v; });
  }
  return payload;
}

void SketchStore::materialize_flat() {
  if (flat_) return;
  sketch_vertices_own_ = assemble_payload();
  sketch_vertices_ = sketch_vertices_own_;
  flat_ = true;
  // The backing storage is now redundant; release it so a materialized
  // store costs the same as a loaded one.
  entry_ptrs_ = {};
  backing_pool_ = RRRPool(num_vertices_);
  backing_segments_ = SegmentedPool();
  bitmap_expansion_ = {};
  compressed_ = false;
  backing_cpool_ = CompressedPool();
  comp_offsets_own_ = {};
  comp_payload_own_ = {};
  comp_offsets_ = {};
  comp_payload_ = {};
}

std::uint64_t SketchStore::memory_bytes() const noexcept {
  return sketch_offsets_own_.capacity() * sizeof(std::uint64_t) +
         sketch_vertices_own_.capacity() * sizeof(VertexId) +
         entry_ptrs_.capacity() * sizeof(const VertexId*) +
         backing_pool_.memory_bytes() + backing_segments_.mapped_bytes() +
         bitmap_expansion_.capacity() * sizeof(VertexId) +
         backing_cpool_.memory_bytes() +
         comp_offsets_own_.capacity() * sizeof(std::uint64_t) +
         comp_payload_own_.capacity() +
         node_offsets_own_.capacity() * sizeof(std::uint64_t) +
         node_sketches_own_.capacity() * sizeof(SketchId) +
         default_seeds_own_.capacity() * sizeof(VertexId) +
         default_marginals_own_.capacity() * sizeof(std::uint64_t);
}

void SketchStore::save(std::ostream& os, SnapshotSaveOptions options) const {
  const std::uint32_t version =
      options.checksum ? kSnapshotVersionV4
                       : (options.compress ? kSnapshotVersionV3
                                           : kSnapshotVersionV2);
  const std::uint32_t section_count =
      options.compress ? kSectionCountV3 : kSectionCountV2;

  // Meta section first (the loader needs the counts before the arrays).
  std::ostringstream meta_os(std::ios::binary);
  write_meta_fields(meta_os, num_vertices_, num_sketches_, k_max_, meta_);
  const std::string meta_blob = meta_os.str();

  // The payload section. v2: the flat vertex image — this is where a
  // deferred (or compressed) backing finally pays the flatten/decode.
  // v3: the varint gap streams — a varint-compressed store's payload is
  // written as-is; every other backing (flat, deferred, Huffman) is
  // (trans)coded into a transient varint image here.
  std::vector<VertexId> transient_flat;
  std::vector<std::uint64_t> transient_comp_offsets;
  std::vector<std::uint8_t> transient_comp_payload;
  const void* payload_data = nullptr;
  std::uint64_t payload_bytes = 0;
  std::span<const std::uint64_t> comp_offsets;
  if (!options.compress) {
    std::span<const VertexId> payload = sketch_vertices_;
    if (!flat_) {
      transient_flat = assemble_payload();
      payload = transient_flat;
    }
    payload_data = payload.data();
    payload_bytes = payload.size_bytes();
  } else if (compressed_ && backing_cpool_.codec() != PoolCodec::kHuffman) {
    payload_data = comp_payload_.data();
    payload_bytes = comp_payload_.size_bytes();
    comp_offsets = comp_offsets_;
  } else {
    transient_comp_offsets.resize(num_sketches_ + 1);
    transient_comp_offsets[0] = 0;
    std::vector<std::vector<std::uint8_t>> streams(num_sketches_);
#pragma omp parallel for schedule(dynamic, 64)
    for (std::uint64_t s = 0; s < num_sketches_; ++s) {
      std::vector<VertexId> members;
      members.reserve(member_count(static_cast<SketchId>(s)));
      for_each_member(static_cast<SketchId>(s),
                      [&](VertexId v) { members.push_back(v); });
      append_gap_stream(streams[s], members);
    }
    for (std::uint64_t s = 0; s < num_sketches_; ++s) {
      transient_comp_offsets[s + 1] =
          transient_comp_offsets[s] + streams[s].size();
    }
    transient_comp_payload.resize(transient_comp_offsets.back());
    for (std::uint64_t s = 0; s < num_sketches_; ++s) {
      std::copy(streams[s].begin(), streams[s].end(),
                transient_comp_payload.begin() +
                    static_cast<std::ptrdiff_t>(transient_comp_offsets[s]));
    }
    payload_data = transient_comp_payload.data();
    payload_bytes = transient_comp_payload.size();
    comp_offsets = transient_comp_offsets;
  }

  struct Blob {
    std::uint32_t id;
    const void* data;
    std::uint64_t bytes;
  };
  std::vector<Blob> blobs = {
      {kSecMeta, meta_blob.data(), meta_blob.size()},
      {kSecSketchOffsets, sketch_offsets_.data(),
       sketch_offsets_.size_bytes()},
      {kSecSketchVertices, payload_data, payload_bytes},
      {kSecNodeOffsets, node_offsets_.data(), node_offsets_.size_bytes()},
      {kSecNodeSketches, node_sketches_.data(),
       node_sketches_.size_bytes()},
      {kSecDefaultSeeds, default_seeds_.data(),
       default_seeds_.size_bytes()},
      {kSecDefaultMarginals, default_marginals_.data(),
       default_marginals_.size_bytes()},
  };
  if (options.compress) {
    blobs.push_back(
        {kSecCompOffsets, comp_offsets.data(), comp_offsets.size_bytes()});
  }

  std::vector<std::uint64_t> offsets(section_count);
  std::uint64_t cursor = header_bytes(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    cursor = align_up(cursor, kSectionAlign);
    offsets[i] = cursor;
    cursor += blobs[i].bytes;
  }
  const std::uint64_t file_bytes = cursor;

  bin::write_header(os, kSnapshotMagic, version);
  bin::write_pod(os, section_count);
  bin::write_pod(os, file_bytes);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    // v4 stamps the section's CRC32C into the slot v2/v3 reserved as 0.
    const std::uint32_t crc =
        options.checksum ? crc32c(blobs[i].data, blobs[i].bytes) : 0;
    bin::write_pod(os, blobs[i].id);
    bin::write_pod(os, crc);
    bin::write_pod(os, offsets[i]);
    bin::write_pod(os, blobs[i].bytes);
  }

  static const char zeros[kSectionAlign] = {};
  std::uint64_t written = header_bytes(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    for (std::uint64_t pad = offsets[i] - written; pad > 0;) {
      const std::uint64_t chunk = std::min<std::uint64_t>(pad, sizeof zeros);
      os.write(zeros, static_cast<std::streamsize>(chunk));
      pad -= chunk;
    }
    if (blobs[i].bytes > 0) {
      os.write(static_cast<const char*>(blobs[i].data),
               static_cast<std::streamsize>(blobs[i].bytes));
    }
    written = offsets[i] + blobs[i].bytes;
  }
}

void SketchStore::save_legacy_v1(std::ostream& os) const {
  bin::write_header(os, kSnapshotMagic, kSnapshotVersionV1);
  write_meta_fields(os, num_vertices_, num_sketches_, k_max_, meta_);
  // Primary data only, length-prefixed: v1 loaders recompute the
  // derived index and default sequence.
  bin::write_span(os, sketch_offsets_);
  if (flat_) {
    bin::write_span(os, sketch_vertices_);
  } else {
    bin::write_vec(os, assemble_payload());
  }
}

bool operator==(const SketchStore& a, const SketchStore& b) {
  if (a.num_vertices_ != b.num_vertices_ ||
      a.num_sketches_ != b.num_sketches_ || a.k_max_ != b.k_max_ ||
      !(a.meta_ == b.meta_) ||
      !std::equal(a.sketch_offsets_.begin(), a.sketch_offsets_.end(),
                  b.sketch_offsets_.begin(), b.sketch_offsets_.end())) {
    return false;
  }
  // Logical member compare, independent of backing: span-vs-span when
  // both sides are raw, else enumerate (decoding compressed payloads)
  // into per-sketch scratch.
  std::vector<VertexId> va;
  std::vector<VertexId> vb;
  for (std::uint64_t s = 0; s < a.num_sketches_; ++s) {
    if (!a.compressed_ && !b.compressed_) {
      const std::span<const VertexId> sa = a.sketch(static_cast<SketchId>(s));
      const std::span<const VertexId> sb = b.sketch(static_cast<SketchId>(s));
      if (!std::equal(sa.begin(), sa.end(), sb.begin(), sb.end())) {
        return false;
      }
      continue;
    }
    va.clear();
    vb.clear();
    a.for_each_member(static_cast<SketchId>(s),
                      [&](VertexId v) { va.push_back(v); });
    b.for_each_member(static_cast<SketchId>(s),
                      [&](VertexId v) { vb.push_back(v); });
    if (va != vb) return false;
  }
  return true;
}

void SketchStore::save_file(const std::string& path,
                            SnapshotSaveOptions options) const {
  std::ofstream os(path, std::ios::binary);
  EIMM_CHECK(os.good(), "cannot open snapshot file for writing");
  save(os, options);
  EIMM_CHECK(os.good(), "snapshot write failed");
}

void SketchStore::validate_structure() const {
  // Shape checks only — O(sections + θ + |V| + k), no pool-sized scan.
  // A malformed snapshot must fail loudly here, not as UB inside a
  // query.
  EIMM_CHECK(num_vertices_ > 0, "snapshot holds a zero-vertex store");
  EIMM_CHECK(k_max_ > 0, "snapshot holds a zero query cap");
  EIMM_CHECK(k_max_ <= num_vertices_,
             "snapshot query cap exceeds the vertex count");
  EIMM_CHECK(num_sketches_ < std::numeric_limits<SketchId>::max(),
             "snapshot sketch count overflows 32-bit sketch ids");
  EIMM_CHECK(sketch_offsets_.size() == num_sketches_ + 1,
             "snapshot sketch offsets inconsistent with sketch count");
  if (compressed_) {
    EIMM_CHECK(sketch_offsets_.front() == 0,
               "snapshot sketch offsets do not start at zero");
    EIMM_CHECK(comp_offsets_.size() == num_sketches_ + 1,
               "snapshot compressed offsets inconsistent with sketch count");
    EIMM_CHECK(comp_offsets_.front() == 0 &&
                   comp_offsets_.back() == comp_payload_.size(),
               "snapshot compressed offsets do not span the payload");
    for (std::size_t i = 1; i < comp_offsets_.size(); ++i) {
      EIMM_CHECK(comp_offsets_[i] >= comp_offsets_[i - 1],
                 "snapshot compressed offsets decrease");
    }
  } else {
    EIMM_CHECK(sketch_offsets_.front() == 0 &&
                   sketch_offsets_.back() == sketch_vertices_.size(),
               "snapshot sketch offsets do not span the vertex payload");
  }
  for (std::size_t i = 1; i < sketch_offsets_.size(); ++i) {
    EIMM_CHECK(sketch_offsets_[i] >= sketch_offsets_[i - 1],
               "snapshot sketch offsets decrease");
  }
  EIMM_CHECK(node_offsets_.size() ==
                 static_cast<std::size_t>(num_vertices_) + 1,
             "snapshot node offsets inconsistent with vertex count");
  EIMM_CHECK(node_offsets_.front() == 0 &&
                 node_offsets_.back() == node_sketches_.size(),
             "snapshot node offsets do not span the inverted index");
  for (std::size_t i = 1; i < node_offsets_.size(); ++i) {
    EIMM_CHECK(node_offsets_[i] >= node_offsets_[i - 1],
               "snapshot node offsets decrease");
  }
  EIMM_CHECK(node_sketches_.size() == sketch_offsets_.back(),
             "snapshot inverted index size disagrees with the payload");
  EIMM_CHECK(default_seeds_.size() == default_marginals_.size(),
             "snapshot default sequence arrays disagree in length");
  EIMM_CHECK(default_seeds_.size() <= k_max_,
             "snapshot default sequence exceeds the query cap");
  for (const VertexId v : default_seeds_) {
    EIMM_CHECK(v < num_vertices_, "snapshot default seed out of range");
  }
}

void SketchStore::validate_payload() const {
  // Enumerates through for_each_member, so a compressed payload is fully
  // decoded here: gap-codec corruption (truncated/overlong varints, zero
  // gaps — i.e. non-ascending members) surfaces as CheckError now, not
  // inside a query.
  for (std::uint64_t s = 0; s < num_sketches_; ++s) {
    VertexId prev = 0;
    bool first = true;
    for_each_member(static_cast<SketchId>(s), [&](VertexId v) {
      EIMM_CHECK(v < num_vertices_, "snapshot sketch member out of range");
      // Strictly ascending runs are the sketch() contract — and rule out
      // duplicate members, which would double-count coverage.
      EIMM_CHECK(first || prev < v,
                 "snapshot sketch members not strictly ascending");
      prev = v;
      first = false;
    });
  }
  for (const SketchId s : node_sketches_) {
    EIMM_CHECK(s < num_sketches_,
               "snapshot inverted-index entry out of range");
  }
}

void SketchStore::validate_derived() const {
  // Recompute the inverted index exactly as finalize() would and compare
  // against the carried arrays: a v2 snapshot whose derived state was
  // tampered with (or bit-rotted) must not serve wrong covering lists.
  const VertexId n = num_vertices_;
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (std::uint64_t s = 0; s < num_sketches_; ++s) {
    for_each_member(static_cast<SketchId>(s), [&](VertexId v) {
      ++offsets[static_cast<std::size_t>(v) + 1];
    });
  }
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  EIMM_CHECK(std::equal(offsets.begin(), offsets.end(),
                        node_offsets_.begin(), node_offsets_.end()),
             "snapshot inverted index disagrees with the sketch payload");
  std::vector<SketchId> sketches(node_sketches_.size());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::uint64_t s = 0; s < num_sketches_; ++s) {
    for_each_member(static_cast<SketchId>(s), [&](VertexId v) {
      sketches[cursor[v]++] = static_cast<SketchId>(s);
    });
  }
  EIMM_CHECK(std::equal(sketches.begin(), sketches.end(),
                        node_sketches_.begin(), node_sketches_.end()),
             "snapshot inverted index disagrees with the sketch payload");

  // And the default greedy sequence: rerun the kernel over the loaded
  // store and require the carried prefix to match.
  QueryOptions defaults;
  defaults.k = k_max_;
  const QueryResult seq = run_query(*this, defaults);
  EIMM_CHECK(std::equal(seq.seeds.begin(), seq.seeds.end(),
                        default_seeds_.begin(), default_seeds_.end()),
             "snapshot default seed sequence disagrees with the kernel");
  EIMM_CHECK(std::equal(seq.marginal_coverage.begin(),
                        seq.marginal_coverage.end(),
                        default_marginals_.begin(),
                        default_marginals_.end()),
             "snapshot default marginals disagree with the kernel");
}

SketchStore SketchStore::load_v1(std::istream& is) {
  SketchStore store;
  read_meta_fields(is, store.num_vertices_, store.num_sketches_,
                   store.k_max_, store.meta_);
  store.sketch_offsets_own_ =
      bin::read_vec<std::uint64_t>(is, section_name(kSecSketchOffsets));
  store.sketch_vertices_own_ =
      bin::read_vec<VertexId>(is, section_name(kSecSketchVertices));
  store.flat_ = true;
  store.sketch_offsets_ = store.sketch_offsets_own_;
  store.sketch_vertices_ = store.sketch_vertices_own_;

  // v1 carries primary data only: validate it, then rebuild the derived
  // state, so no cross-index inconsistency can survive a load.
  EIMM_CHECK(store.num_vertices_ > 0, "snapshot holds a zero-vertex store");
  EIMM_CHECK(store.k_max_ > 0, "snapshot holds a zero query cap");
  EIMM_CHECK(store.k_max_ <= store.num_vertices_,
             "snapshot query cap exceeds the vertex count");
  EIMM_CHECK(store.num_sketches_ < std::numeric_limits<SketchId>::max(),
             "snapshot sketch count overflows 32-bit sketch ids");
  EIMM_CHECK(store.sketch_offsets_.size() == store.num_sketches_ + 1,
             "snapshot sketch offsets inconsistent with sketch count");
  EIMM_CHECK(store.sketch_offsets_.front() == 0 &&
                 store.sketch_offsets_.back() ==
                     store.sketch_vertices_.size(),
             "snapshot sketch offsets do not span the vertex payload");
  for (std::size_t i = 1; i < store.sketch_offsets_.size(); ++i) {
    EIMM_CHECK(store.sketch_offsets_[i] >= store.sketch_offsets_[i - 1],
               "snapshot sketch offsets decrease");
  }
  for (std::uint64_t s = 0; s < store.num_sketches_; ++s) {
    for (std::uint64_t i = store.sketch_offsets_[s];
         i < store.sketch_offsets_[s + 1]; ++i) {
      EIMM_CHECK(store.sketch_vertices_[i] < store.num_vertices_,
                 "snapshot sketch member out of range");
      EIMM_CHECK(i == store.sketch_offsets_[s] ||
                     store.sketch_vertices_[i - 1] < store.sketch_vertices_[i],
                 "snapshot sketch members not strictly ascending");
    }
  }
  try {
    store.finalize();
  } catch (const std::bad_alloc&) {
    // A corrupt num_vertices field can pass the structural checks (no
    // members need exist to exceed it) yet demand an absurd index
    // allocation — keep the fail-loudly contract.
    EIMM_CHECK(false, "snapshot vertex count implausibly large");
  }
  store.load_stats_.version = kSnapshotVersionV1;
  store.load_stats_.bytes_copied =
      store.sketch_offsets_.size_bytes() + store.sketch_vertices_.size_bytes();
  return store;
}

SketchStore SketchStore::load_sections_stream(std::istream& is,
                                              std::uint32_t version) {
  // Magic + version were consumed by the caller; position is 12.
  const bool checksummed = version == kSnapshotVersionV4;
  std::uint32_t section_count = 0;
  std::uint64_t file_bytes = 0;
  bin::read_pod(is, section_count, "section table");
  bin::read_pod(is, file_bytes, "section table");
  const std::uint32_t expected_count =
      checked_section_count(version, section_count);
  const bool compressed = compressed_layout(version, expected_count);
  if (const auto remaining = bin::detail::remaining_bytes(is)) {
    // Seekable stream: the declared length must match reality, so a
    // truncation anywhere (even inside inter-section padding) fails
    // here instead of at the first short section read.
    if (*remaining + 24 != file_bytes) {
      fail_section("truncated file in", "section table", *remaining + 24);
    }
  }
  std::vector<SectionEntry> table(expected_count);
  for (SectionEntry& s : table) {
    bin::read_pod(is, s.id, "section table");
    bin::read_pod(is, s.crc, "section table");
    bin::read_pod(is, s.offset, "section table");
    bin::read_pod(is, s.bytes, "section table");
  }
  check_section_table(table, file_bytes, expected_count);

  SketchStore store;
  std::uint64_t pos = header_bytes(expected_count);
  for (const SectionEntry& s : table) {
    const char* name = section_name(s.id);
    // Inline integrity: the section bytes are in hand, so a v4 stream
    // load proves each section before the next read.
    const auto verify = [&](const void* data) {
      if (!checksummed) return;
      if (crc32c(data, s.bytes) != s.crc) {
        fail_section("checksum mismatch in", name, s.offset);
      }
    };
    is.ignore(static_cast<std::streamsize>(s.offset - pos));
    if (!is.good()) fail_section("truncated padding before", name, pos);
    switch (s.id) {
      case kSecMeta: {
        std::string blob(s.bytes, '\0');
        is.read(blob.data(), static_cast<std::streamsize>(s.bytes));
        if (!is.good()) fail_section("truncated", name, s.offset);
        verify(blob.data());
        std::istringstream meta_is(blob);
        read_meta_fields(meta_is, store.num_vertices_, store.num_sketches_,
                         store.k_max_, store.meta_);
        break;
      }
      case kSecSketchOffsets:
        store.sketch_offsets_own_ =
            read_section_array<std::uint64_t>(is, s.bytes, name, s.offset);
        verify(store.sketch_offsets_own_.data());
        break;
      case kSecSketchVertices:
        if (compressed) {
          store.comp_payload_own_ =
              read_section_array<std::uint8_t>(is, s.bytes, name, s.offset);
          verify(store.comp_payload_own_.data());
        } else {
          store.sketch_vertices_own_ =
              read_section_array<VertexId>(is, s.bytes, name, s.offset);
          verify(store.sketch_vertices_own_.data());
        }
        break;
      case kSecNodeOffsets:
        store.node_offsets_own_ =
            read_section_array<std::uint64_t>(is, s.bytes, name, s.offset);
        verify(store.node_offsets_own_.data());
        break;
      case kSecNodeSketches:
        store.node_sketches_own_ =
            read_section_array<SketchId>(is, s.bytes, name, s.offset);
        verify(store.node_sketches_own_.data());
        break;
      case kSecDefaultSeeds:
        store.default_seeds_own_ =
            read_section_array<VertexId>(is, s.bytes, name, s.offset);
        verify(store.default_seeds_own_.data());
        break;
      case kSecDefaultMarginals:
        store.default_marginals_own_ =
            read_section_array<std::uint64_t>(is, s.bytes, name, s.offset);
        verify(store.default_marginals_own_.data());
        break;
      case kSecCompOffsets:
        store.comp_offsets_own_ =
            read_section_array<std::uint64_t>(is, s.bytes, name, s.offset);
        verify(store.comp_offsets_own_.data());
        break;
      default: fail_section("unexpected", name, s.offset);
    }
    pos = s.offset + s.bytes;
  }
  store.flat_ = !compressed;
  store.compressed_ = compressed;
  store.adopt_owned_views();
  store.load_stats_.version = version;
  store.load_stats_.file_bytes = file_bytes;
  for (const SectionEntry& s : table) {
    store.load_stats_.bytes_copied += s.bytes;
  }
  store.load_stats_.compressed = compressed;
  store.load_stats_.compressed_payload_bytes =
      compressed ? store.comp_payload_.size() : 0;
  store.load_stats_.checksummed = checksummed;
  store.load_stats_.checksums_verified = checksummed;
  store.validate_structure();
  store.validate_payload();
  return store;
}

SketchStore SketchStore::load_mapped(MappedFile mapping,
                                     const std::string& path,
                                     ChecksumMode checksums) {
  const std::uint8_t* base = mapping.data();
  const std::uint64_t size = mapping.size();
  if (size < header_bytes(kSectionCountV2)) {
    fail_section("truncated header in", "section table", size);
  }
  char expected[8] = {};
  std::memcpy(expected, kSnapshotMagic.data(), kSnapshotMagic.size());
  if (std::memcmp(base, expected, sizeof expected) != 0) {
    throw bin::FormatError(std::string("not a recognized ") + kSnapshotWhat +
                               " ('" + path + "')",
                           "header", 0);
  }
  std::uint32_t version = 0;
  std::uint32_t section_count = 0;
  std::uint64_t file_bytes = 0;
  std::memcpy(&version, base + 8, sizeof version);
  std::memcpy(&section_count, base + 12, sizeof section_count);
  std::memcpy(&file_bytes, base + 16, sizeof file_bytes);
  if (version != kSnapshotVersionV2 && version != kSnapshotVersionV3 &&
      version != kSnapshotVersionV4) {
    fail_section("unmappable snapshot version in", "header", 8);
  }
  const std::uint32_t expected_count =
      checked_section_count(version, section_count);
  const bool compressed = compressed_layout(version, expected_count);
  const bool checksummed = version == kSnapshotVersionV4;
  if (size < header_bytes(expected_count)) {
    fail_section("truncated header in", "section table", size);
  }
  if (file_bytes != size) {
    // The declared length is the truncation guard: a file cut anywhere
    // (payload, padding, table) disagrees with its own header.
    fail_section("truncated file in", "section table", size);
  }
  std::vector<SectionEntry> table(expected_count);
  for (std::uint32_t i = 0; i < expected_count; ++i) {
    const std::uint8_t* entry = base + 24 + i * kSectionEntryBytes;
    std::memcpy(&table[i].id, entry, sizeof table[i].id);
    std::memcpy(&table[i].crc, entry + 4, sizeof table[i].crc);
    std::memcpy(&table[i].offset, entry + 8, sizeof table[i].offset);
    std::memcpy(&table[i].bytes, entry + 16, sizeof table[i].bytes);
  }
  check_section_table(table, file_bytes, expected_count);

  SketchStore store;
  {
    const SectionEntry& s = table[kSecMeta - 1];
    std::istringstream meta_is(
        std::string(reinterpret_cast<const char*>(base + s.offset),
                    static_cast<std::size_t>(s.bytes)));
    try {
      read_meta_fields(meta_is, store.num_vertices_, store.num_sketches_,
                       store.k_max_, store.meta_);
    } catch (const bin::FormatError&) {
      fail_section("malformed", section_name(kSecMeta), s.offset);
    }
  }
  store.sketch_offsets_ =
      map_section<std::uint64_t>(mapping, table[kSecSketchOffsets - 1]);
  if (compressed) {
    store.comp_payload_ =
        map_section<std::uint8_t>(mapping, table[kSecSketchVertices - 1]);
    store.comp_offsets_ =
        map_section<std::uint64_t>(mapping, table[kSecCompOffsets - 1]);
  } else {
    store.sketch_vertices_ =
        map_section<VertexId>(mapping, table[kSecSketchVertices - 1]);
  }
  store.node_offsets_ =
      map_section<std::uint64_t>(mapping, table[kSecNodeOffsets - 1]);
  store.node_sketches_ =
      map_section<SketchId>(mapping, table[kSecNodeSketches - 1]);
  store.default_seeds_ =
      map_section<VertexId>(mapping, table[kSecDefaultSeeds - 1]);
  store.default_marginals_ =
      map_section<std::uint64_t>(mapping, table[kSecDefaultMarginals - 1]);
  store.flat_ = !compressed;
  store.compressed_ = compressed;
  store.mapping_ = std::move(mapping);
  store.load_stats_.version = version;
  store.load_stats_.mmap_backed = true;
  store.load_stats_.file_bytes = file_bytes;
  store.load_stats_.bytes_mapped = size;
  store.load_stats_.bytes_copied = 0;
  store.load_stats_.compressed = compressed;
  store.load_stats_.compressed_payload_bytes =
      compressed ? store.comp_payload_.size() : 0;
  store.load_stats_.checksummed = checksummed;
  if (checksummed && checksums != ChecksumMode::kOff) {
    auto pending = std::make_shared<PendingChecksums>();
    pending->sections.reserve(table.size());
    const std::uint8_t* mapped = store.mapping_.data();
    for (const SectionEntry& s : table) {
      pending->sections.push_back({section_name(s.id), s.offset, s.bytes,
                                   s.crc, mapped + s.offset});
    }
    store.pending_checksums_ = std::move(pending);
    if (checksums == ChecksumMode::kEager) {
      store.verify_checksums();
      store.load_stats_.checksums_verified = true;
    }
  }
  store.validate_structure();
  return store;
}

void SketchStore::verify_checksums() const {
  const std::shared_ptr<PendingChecksums>& pending = pending_checksums_;
  if (!pending) return;
  // call_once leaves the flag unset when the body throws, so a failed
  // verification is reported again to every later caller instead of
  // letting one swallowed exception unlock serving.
  std::call_once(pending->once, [&] {
    for (const PendingChecksums::Section& s : pending->sections) {
      if (crc32c(s.data, s.bytes) != s.expect) {
        fail_section("checksum mismatch in", s.name, s.offset);
      }
    }
    pending->verified.store(true, std::memory_order_release);
  });
}

bool SketchStore::checksums_pending() const noexcept {
  return pending_checksums_ != nullptr &&
         !pending_checksums_->verified.load(std::memory_order_acquire);
}

SketchStore SketchStore::load(std::istream& is) {
  const std::uint32_t version =
      bin::read_header_any(is, kSnapshotMagic, kAcceptedVersions,
                           kSnapshotWhat);
  return version == kSnapshotVersionV1 ? load_v1(is)
                                       : load_sections_stream(is, version);
}

SketchStore SketchStore::load_file(const std::string& path,
                                   SnapshotLoadOptions options) {
  std::ifstream is(path, std::ios::binary);
  EIMM_CHECK(is.good(), "cannot open snapshot file");
  const std::uint32_t version =
      bin::read_header_any(is, kSnapshotMagic, kAcceptedVersions,
                           kSnapshotWhat);
  if (options.mode == SnapshotLoadMode::kMap) {
    EIMM_CHECK(version != kSnapshotVersionV1,
               "legacy v1 snapshots cannot be mmap-served; re-save as v2");
  }
  SketchStore store;
  if (version != kSnapshotVersionV1 &&
      options.mode != SnapshotLoadMode::kStream) {
    is.close();
    store = load_mapped(MappedFile::open_readonly(path), path,
                        options.checksums);
  } else if (version == kSnapshotVersionV1) {
    store = load_v1(is);
  } else {
    store = load_sections_stream(is, version);
  }
  if (options.deep_validate) {
    // Checksums first: a deep scan over provably intact bytes separates
    // "bit rot" from "writer bug" in the diagnostic.
    store.verify_checksums();
    if (store.pending_checksums_ != nullptr) {
      store.load_stats_.checksums_verified = true;
    }
    store.validate_payload();
    store.validate_derived();
    store.load_stats_.deep_validated = true;
  }
  return store;
}

}  // namespace eimm
