// extract_results — the C++ twin of the SC'24 artifact's
// extract_results.py: scans strong-scaling-logs-* style directories of
// per-run JSON logs, finds each (dataset, algorithm) pair's best time
// over thread counts, and writes speedup CSV summaries.
//
//   extract_results --logs strong-scaling-logs-ic --out results/speedup_ic.csv
//
// Expects the JSON schema io/json_log.hpp writes (also what imm_cli and
// the bench binaries emit).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "support/csv.hpp"
#include "support/json_parse.hpp"
#include "support/table.hpp"

namespace {

struct BestRun {
  double seconds = 1e300;
  int threads = 0;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, "usage: %s --logs DIR [--out FILE.csv]\n", argv0);
  std::exit(error != nullptr ? 2 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eimm;

  std::string logs_dir;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], ("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--logs") logs_dir = next();
    else if (arg == "--out") out_path = next();
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else usage(argv[0], ("unknown option " + arg).c_str());
  }
  if (logs_dir.empty()) usage(argv[0], "--logs is required");

  // dataset -> algorithm -> best run over thread counts.
  std::map<std::string, std::map<std::string, BestRun>> best;
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(logs_dir)) {
    if (entry.path().extension() != ".json") continue;
    std::ifstream is(entry.path());
    std::stringstream buffer;
    buffer << is.rdbuf();
    JsonValue doc;
    try {
      doc = parse_json(buffer.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "skipping %s: %s\n", entry.path().c_str(),
                   e.what());
      continue;
    }
    ++files;
    const std::string dataset = doc.at("Input").as_string();
    const std::string algorithm = doc.at("Algorithm").as_string();
    const double total = doc.at("Total").as_number();
    const int threads = static_cast<int>(doc.at("NumThreads").as_number());
    BestRun& run = best[dataset][algorithm];
    if (total < run.seconds) run = {total, threads};
  }
  std::printf("parsed %zu log files from %s\n", files, logs_dir.c_str());
  if (best.empty()) {
    std::fprintf(stderr, "no usable logs found\n");
    return 1;
  }

  AsciiTable table({"Dataset", "Speedup", "EfficientIMM Time (s)",
                    "Ripples Time (s)", "Ripples Best #Threads",
                    "EfficientIMM Best #Threads"});
  std::ofstream csv_file;
  if (!out_path.empty()) {
    std::filesystem::create_directories(
        std::filesystem::path(out_path).parent_path());
    csv_file.open(out_path);
  }
  CsvWriter csv(csv_file);
  if (csv_file.is_open()) {
    csv.row({"Dataset", "Speedup", "EfficientIMM Time (s)",
             "Ripples Time (s)", "Ripples Best #Threads",
             "EfficientIMM Best #Threads"});
  }

  for (const auto& [dataset, algorithms] : best) {
    const auto efficient = algorithms.find("EfficientIMM");
    const auto ripples = algorithms.find("Ripples");
    if (efficient == algorithms.end() || ripples == algorithms.end()) {
      std::fprintf(stderr, "%s: missing one algorithm, skipping\n",
                   dataset.c_str());
      continue;
    }
    const double speedup =
        ripples->second.seconds / efficient->second.seconds;
    table.new_row()
        .add(dataset)
        .add(format_speedup(speedup, 2))
        .add(efficient->second.seconds, 4)
        .add(ripples->second.seconds, 4)
        .add(ripples->second.threads)
        .add(efficient->second.threads);
    if (csv_file.is_open()) {
      csv.cell(dataset)
          .cell(format_double(speedup, 2))
          .cell(format_double(efficient->second.seconds, 4))
          .cell(format_double(ripples->second.seconds, 4))
          .cell(ripples->second.threads)
          .cell(efficient->second.threads);
      csv.end_row();
    }
  }
  table.print(std::cout);
  if (csv_file.is_open()) std::printf("csv: %s\n", out_path.c_str());
  return 0;
}
