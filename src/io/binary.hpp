// Binary serialization — load big graphs (and sketch-store snapshots)
// without re-parsing text. Little-endian, versioned headers.
//
// The eimm::bin helpers are the shared on-disk vocabulary: every binary
// format in the project (CSR graphs here, sketch-store snapshots in
// src/serve) is an 8-byte magic + u32 version header followed by PODs
// and length-prefixed POD vectors. Failures throw FormatError (a
// CheckError subclass) naming the section being read and, on seekable
// streams, the byte offset where the failing read began — never UB and
// never a partially populated object: these reads are load-bearing for
// the mmap'ed snapshot path, where a corrupt length field must not turn
// into a multi-exabyte allocation or an out-of-bounds pointer.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "graph/csr.hpp"
#include "support/macros.hpp"

namespace eimm {

namespace bin {

/// Thrown on every malformed-input path: carries the section name and
/// the byte offset of the failing read (nullopt on non-seekable
/// streams). Derives CheckError so existing catch sites keep working.
class FormatError : public CheckError {
 public:
  FormatError(const std::string& message, std::string section,
              std::optional<std::uint64_t> offset)
      : CheckError(message),
        section_(std::move(section)),
        offset_(offset) {}

  [[nodiscard]] const std::string& section() const noexcept {
    return section_;
  }
  [[nodiscard]] const std::optional<std::uint64_t>& offset() const noexcept {
    return offset_;
  }

 private:
  std::string section_;
  std::optional<std::uint64_t> offset_;
};

namespace detail {
/// Throws CheckError (EIMM_CHECK only takes literal messages; the bin
/// helpers want the format name in the text).
[[noreturn]] void fail(const std::string& message);
/// Throws FormatError: "<reason> <section> at byte offset N".
[[noreturn]] void fail_section(const char* reason, const char* section,
                               std::optional<std::uint64_t> offset);
inline void require(bool ok, const char* prefix, const char* what) {
  if (!ok) fail(std::string(prefix) + what);
}
/// Failpoint hook for the `io.bin.read` site (defined out of line so the
/// templated readers need not include the failpoint registry): kError
/// throws InjectedFault, kTrunc surfaces as a truncated-read
/// FormatError, exactly like a real short file.
void maybe_inject_read(const char* what, std::optional<std::uint64_t> at);
/// Current read position, or nullopt when the stream is not seekable.
std::optional<std::uint64_t> tell(std::istream& is);
/// Bytes left between the read position and EOF, or nullopt when the
/// stream is not seekable. Guards length-prefixed reads: a corrupted
/// length field must raise FormatError, not a multi-exabyte allocation.
std::optional<std::uint64_t> remaining_bytes(std::istream& is);
}  // namespace detail

/// Writes the 8-byte magic (shorter tags are NUL-padded) + version.
void write_header(std::ostream& os, std::string_view magic,
                  std::uint32_t version);

/// Reads and validates a header written by write_header. Returns the
/// stored version; throws FormatError on bad magic or a version not in
/// `accepted` (version negotiation for formats with several live
/// revisions — the caller dispatches on the return value). `what` names
/// the format in error messages ("sketch-store snapshot").
std::uint32_t read_header_any(std::istream& is, std::string_view magic,
                              std::span<const std::uint32_t> accepted,
                              const char* what);

/// Single-version convenience over read_header_any.
std::uint32_t read_header(std::istream& is, std::string_view magic,
                          std::uint32_t expected_version, const char* what);

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::istream& is, T& v, const char* what = "binary file") {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto at = detail::tell(is);
  detail::maybe_inject_read(what, at);
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is.good()) detail::fail_section("truncated", what, at);
}

template <typename T>
void write_span(std::ostream& os, std::span<const T> v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_span(os, std::span<const T>(v));
}

template <typename T>
std::vector<T> read_vec(std::istream& is, const char* what = "binary file") {
  std::uint64_t size = 0;
  read_pod(is, size, what);
  const auto at = detail::tell(is);
  if (const auto left = detail::remaining_bytes(is)) {
    // Divide, don't multiply: size * sizeof(T) can wrap u64 for a
    // corrupt length field, silently passing the bound it should fail.
    if (size > *left / sizeof(T)) {
      detail::fail_section("truncated payload in", what, at);
    }
  }
  std::vector<T> v;
  try {
    v.resize(size);
  } catch (const std::exception&) {
    // Non-seekable stream with a corrupt length: the pre-check above
    // couldn't run, so keep the fail-loudly contract here.
    detail::fail_section("implausible payload length in", what, at);
  }
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  // A payload ending exactly at EOF reads clean (eofbit is only set by
  // reading PAST the end); anything short of the declared length fails.
  if (!is.good()) detail::fail_section("truncated payload in", what, at);
  return v;
}

void write_string(std::ostream& os, const std::string& s);
std::string read_string(std::istream& is, const char* what = "binary file");

}  // namespace bin

/// Writes the CSR arrays with a magic/version header.
void write_binary_csr(std::ostream& os, const CSRGraph& g);
void write_binary_csr_file(const std::string& path, const CSRGraph& g);

/// Reads a graph previously written by write_binary_csr. Throws
/// FormatError on bad magic, version, or truncated payload.
CSRGraph read_binary_csr(std::istream& is);
CSRGraph read_binary_csr_file(const std::string& path);

}  // namespace eimm
