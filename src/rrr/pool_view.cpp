#include "rrr/pool_view.hpp"

#include <algorithm>

#include "support/macros.hpp"

namespace eimm {

ShardArena::Ref ShardArena::allocate(std::size_t len,
                                     std::span<VertexId>& out) {
  // Advance through existing chunks (reset() reuse) before mapping new
  // ones; a run never spans chunks.
  while (cursor_ < chunks_.size() &&
         chunks_[cursor_].bytes() / sizeof(VertexId) - head_used_ < len) {
    ++cursor_;
    head_used_ = 0;
  }
  if (cursor_ >= chunks_.size()) {
    const std::size_t capacity = std::max(chunk_vertices_, len);
    chunks_.emplace_back(capacity * sizeof(VertexId), MemPolicy::kLocal);
    cursor_ = chunks_.size() - 1;
    head_used_ = 0;
  }
  Ref ref;
  ref.chunk = static_cast<std::uint32_t>(cursor_);
  ref.pos = static_cast<std::uint32_t>(head_used_);
  ref.len = static_cast<std::uint32_t>(len);
  auto* base = static_cast<VertexId*>(chunks_[cursor_].data());
  out = {base + head_used_, len};
  head_used_ += len;
  ++runs_;
  staged_vertices_ += len;
  return ref;
}

ShardArena::Ref ShardArena::append(std::span<const VertexId> vertices) {
  std::span<VertexId> dest;
  const Ref ref = allocate(vertices.size(), dest);
  std::copy(vertices.begin(), vertices.end(), dest.begin());
  return ref;
}

std::span<const VertexId> ShardArena::view(const Ref& ref) const noexcept {
  const auto* base = static_cast<const VertexId*>(chunks_[ref.chunk].data());
  return {base + ref.pos, ref.len};
}

void ShardArena::reset() noexcept {
  cursor_ = 0;
  head_used_ = 0;
}

std::uint64_t ShardArena::mapped_bytes() const noexcept {
  std::uint64_t bytes = 0;
  for (const NumaBuffer& c : chunks_) bytes += c.bytes();
  return bytes;
}

void SegmentedPool::resize(std::size_t count) {
  EIMM_CHECK(count >= entries_.size(), "SegmentedPool never shrinks");
  entries_.resize(count);
}

void SegmentedPool::ensure_workers(std::size_t workers) {
  if (arenas_.size() < workers) arenas_.resize(workers);
}

std::uint64_t SegmentedPool::staged_bytes() const noexcept {
  std::uint64_t bytes = 0;
  for (const ShardArena& a : arenas_) bytes += a.staged_bytes();
  return bytes;
}

std::uint64_t SegmentedPool::mapped_bytes() const noexcept {
  std::uint64_t bytes = 0;
  for (const ShardArena& a : arenas_) bytes += a.mapped_bytes();
  return bytes;
}

std::uint64_t RRRPoolView::total_vertices() const noexcept {
  if (pool_ != nullptr) return pool_->total_vertices();
  if (comp_ != nullptr) return comp_->total_vertices();
  if (segments_ == nullptr) return 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < segments_->size(); ++i) {
    total += segments_->run(i).size();
  }
  return total;
}

std::size_t RRRPoolView::bitmap_count() const noexcept {
  return pool_ != nullptr ? pool_->bitmap_count() : 0;
}

std::uint64_t RRRPoolView::memory_bytes() const noexcept {
  if (pool_ != nullptr) return pool_->memory_bytes();
  if (comp_ != nullptr) return comp_->memory_bytes();
  return segments_ != nullptr ? segments_->mapped_bytes() : 0;
}

FlatPool RRRPoolView::flatten() const {
  if (pool_ != nullptr) return pool_->flatten();
  FlatPool flat;
  flat.num_vertices = num_vertices();
  const std::size_t count = size();
  flat.offsets.resize(count + 1);
  flat.offsets[0] = 0;
  for (std::size_t i = 0; i < count; ++i) {
    flat.offsets[i + 1] = flat.offsets[i] + (*this)[i].size();
  }
  flat.vertices.resize(flat.offsets.back());
  if (segments_ != nullptr) {
#pragma omp parallel for schedule(dynamic, 64)
    for (std::size_t i = 0; i < count; ++i) {
      const std::span<const VertexId> run = segments_->run(i);
      std::copy(run.begin(), run.end(),
                flat.vertices.begin() +
                    static_cast<std::ptrdiff_t>(flat.offsets[i]));
    }
  } else if (comp_ != nullptr) {
#pragma omp parallel for schedule(dynamic, 64)
    for (std::size_t i = 0; i < count; ++i) {
      auto out = flat.vertices.begin() +
                 static_cast<std::ptrdiff_t>(flat.offsets[i]);
      comp_->slot(i).for_each([&](VertexId v) { *out++ = v; });
    }
  }
  return flat;
}

}  // namespace eimm
