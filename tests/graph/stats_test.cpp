#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace eimm {
namespace {

TEST(GraphStats, StarDegrees) {
  const CSRGraph g = build_csr(gen_star(101), 101);
  const auto s = compute_graph_stats(g);
  EXPECT_EQ(s.num_vertices, 101u);
  EXPECT_EQ(s.num_edges, 100u);
  EXPECT_EQ(s.max_out_degree, 100u);
  EXPECT_NEAR(s.avg_out_degree, 100.0 / 101.0, 1e-9);
  // The hub is the top-1% vertex and owns every edge.
  EXPECT_DOUBLE_EQ(s.top1pct_degree_share, 1.0);
}

TEST(GraphStats, CycleIsOneScc) {
  const CSRGraph g = build_csr(gen_cycle(50), 50);
  const auto s = compute_graph_stats(g);
  EXPECT_DOUBLE_EQ(s.largest_scc_fraction, 1.0);
}

TEST(GraphStats, PathSccFractionTiny) {
  const CSRGraph g = build_csr(gen_path(100), 100);
  const auto s = compute_graph_stats(g);
  EXPECT_DOUBLE_EQ(s.largest_scc_fraction, 0.01);
}

TEST(GraphStats, SccSkippable) {
  const CSRGraph g = build_csr(gen_cycle(10), 10);
  const auto s = compute_graph_stats(g, /*with_scc=*/false);
  EXPECT_DOUBLE_EQ(s.largest_scc_fraction, 0.0);
}

TEST(GraphStats, EmptyGraph) {
  const CSRGraph g;
  const auto s = compute_graph_stats(g);
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.num_edges, 0u);
}

TEST(GraphStats, UniformDegreesLowSkew) {
  const CSRGraph g = build_csr(gen_cycle(1000), 1000);
  const auto s = compute_graph_stats(g);
  // Every vertex has out-degree 1, so the top 1% holds exactly 1%.
  EXPECT_NEAR(s.top1pct_degree_share, 0.01, 1e-9);
}

TEST(GraphStats, DescribeMentionsKeyNumbers) {
  const CSRGraph g = build_csr(gen_star(10), 10);
  const auto s = compute_graph_stats(g);
  const std::string d = describe(s);
  EXPECT_NE(d.find("|V|=10"), std::string::npos);
  EXPECT_NE(d.find("|E|=9"), std::string::npos);
}

}  // namespace
}  // namespace eimm
