// The global vertex-occurrence counter of Algorithm 2, in two layouts.
//
// CounterArray — one 64-bit atomic per vertex; increments/decrements are
// relaxed — the counter is a statistic, and the selection loop reads it
// only after an OpenMP barrier, which supplies the necessary ordering.
// 64-bit width matches the paper's observation that `lock incq` confines
// the locked region to one quadword, so concurrent updates to different
// vertices never contend on the same memory word (they may still share a
// cache line; that is the fine-grained-vs-padded trade-off benchmarked
// in bench/micro_counters).
//
// ShardedCounterArray — the NUMA answer to the same counter (§IV-C taken
// across sockets): one domain-local replica of the full array per NUMA
// domain, pages requested mbind(kLocal) so each replica faults onto the
// domain of the threads that write it. Updates go to the CALLER's home
// replica (pure local traffic — the remote-write pattern the paper's
// Table II NUMA bitmap analysis charges is gone); the logical value of a
// vertex is the SUM over replicas, read at arg-max time by the
// hierarchical reduction in runtime/reduction. Per-replica values may
// individually wrap below zero when a decrement lands on a different
// replica than the increment it cancels — uint64 modular arithmetic
// makes the sum exact regardless, so the summed view equals the flat
// array bit-for-bit and seed sequences are unchanged (a property the
// test suite enforces). With shards == 1 the layout degenerates to the
// flat array.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "numa/alloc.hpp"

namespace eimm {

/// Resolves a counter-shard request: explicit positive values win, then
/// the EIMM_COUNTER_SHARDS environment variable, then the detected NUMA
/// domain count (1 on non-NUMA hosts — the legacy flat layout). Always
/// >= 1.
int resolve_counter_shards(int requested);

/// Thread-affine view over one counter slab (the flat array, or one NUMA
/// replica of the sharded layout). The selection kernels resolve it once
/// per worker per parallel region, then update without re-deriving the
/// home replica on every counter touch.
class CounterSlab {
 public:
  CounterSlab() = default;
  explicit CounterSlab(std::atomic<std::uint64_t>* slab) noexcept
      : slab_(slab) {}

  void increment(std::size_t i) noexcept {
    slab_[i].fetch_add(1, std::memory_order_relaxed);
  }
  void decrement(std::size_t i) noexcept {
    slab_[i].fetch_sub(1, std::memory_order_relaxed);
  }
  void store(std::size_t i, std::uint64_t v) noexcept {
    slab_[i].store(v, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t>* slab_ = nullptr;
};

class CounterArray {
 public:
  CounterArray() = default;

  /// `n` counters, zero-initialized, placed with `policy` (the
  /// NUMA-aware engine interleaves; kDefault for unit tests).
  explicit CounterArray(std::size_t n,
                        MemPolicy policy = MemPolicy::kDefault);

  [[nodiscard]] std::size_t size() const noexcept { return array_.size(); }

  /// Worker-local view; for the flat layout every worker shares the one
  /// slab (same API as the sharded layout, so the kernel is generic).
  [[nodiscard]] CounterSlab local() noexcept {
    return CounterSlab(array_.data());
  }

  void increment(std::size_t i) noexcept {
    array_[i].fetch_add(1, std::memory_order_relaxed);
  }
  void decrement(std::size_t i) noexcept {
    array_[i].fetch_sub(1, std::memory_order_relaxed);
  }
  /// Non-atomic read; callers synchronize via parallel-region barriers.
  [[nodiscard]] std::uint64_t get(std::size_t i) const noexcept {
    return array_[i].load(std::memory_order_relaxed);
  }
  void set(std::size_t i, std::uint64_t v) noexcept {
    array_[i].store(v, std::memory_order_relaxed);
  }

  /// Zeroes all counters (parallel).
  void reset() noexcept;

  /// Copies the counters into a plain vector (for tests/inspection).
  [[nodiscard]] std::vector<std::uint64_t> snapshot() const;

  /// Sum of all counters (serial; test helper).
  [[nodiscard]] std::uint64_t total() const noexcept;

 private:
  NumaArray<std::atomic<std::uint64_t>> array_;
};

/// Domain-sharded counter: `shards` full replicas of an `n`-counter
/// array, each an mbind(kLocal) NumaArray. See the file comment for the
/// replica/sum semantics.
class ShardedCounterArray {
 public:
  ShardedCounterArray() = default;

  /// `n` counters replicated `shards` times (clamped to >= 1);
  /// zero-initialized. `policy` defaults to kLocal so each replica
  /// faults onto the domain of its writers (first touch under pinning).
  ShardedCounterArray(std::size_t n, int shards,
                      MemPolicy policy = MemPolicy::kLocal);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] int shards() const noexcept {
    return static_cast<int>(replicas_.size());
  }

  /// The calling thread's home replica: its NUMA domain modulo the shard
  /// count on NUMA hosts; its OpenMP thread id modulo the shard count on
  /// flat hosts (which still splits update contention). Any assignment
  /// is CORRECT — the summed view is replica-placement-invariant — home
  /// only decides which updates stay domain-local.
  [[nodiscard]] int home_shard() const noexcept;

  /// Worker-local view over the home replica (resolve once per region).
  [[nodiscard]] CounterSlab local() noexcept {
    return CounterSlab(replicas_[static_cast<std::size_t>(home_shard())]
                           .data());
  }
  /// View over one explicit replica (tests, loaders).
  [[nodiscard]] CounterSlab local(int shard) noexcept {
    return CounterSlab(replicas_[static_cast<std::size_t>(shard)].data());
  }

  /// Convenience single-update entry points (resolve home per call; the
  /// kernels use local() instead).
  void increment(std::size_t i) noexcept { local().increment(i); }
  void decrement(std::size_t i) noexcept { local().decrement(i); }

  /// Logical value: modular sum across replicas (see file comment).
  [[nodiscard]] std::uint64_t get(std::size_t i) const noexcept {
    std::uint64_t sum = 0;
    for (const auto& replica : replicas_) {
      sum += replica[i].load(std::memory_order_relaxed);
    }
    return sum;
  }

  /// Raw value of one replica slot (tests/diagnostics).
  [[nodiscard]] std::uint64_t replica_get(int shard,
                                          std::size_t i) const noexcept {
    return replicas_[static_cast<std::size_t>(shard)][i].load(
        std::memory_order_relaxed);
  }

  /// Zeroes every replica (parallel).
  void reset() noexcept;

  /// Loads a flat base counter (the fused Algorithm 3 build) into the
  /// sharded layout: workers copy disjoint vertex blocks into their own
  /// home replicas, so the values land domain-local under pinning. The
  /// array must be freshly constructed or reset — slots outside a
  /// worker's home replica are assumed zero.
  void load_base(const CounterArray& base);

  /// reset() + load_base() fused into ONE parallel pass: each worker
  /// writes the base into its home replica and zeroes its vertex block
  /// in every other replica — the reload the SelectionWorkspace performs
  /// between martingale probe rounds, without the separate wipe pass
  /// over the home replica. Works on any prior state.
  void reload_base(const CounterArray& base);

  /// Summed view as a plain vector (tests/inspection).
  [[nodiscard]] std::vector<std::uint64_t> snapshot() const;

  /// Sum of all logical counters (serial; test helper).
  [[nodiscard]] std::uint64_t total() const noexcept;

 private:
  std::size_t n_ = 0;
  std::vector<NumaArray<std::atomic<std::uint64_t>>> replicas_;
};

}  // namespace eimm
