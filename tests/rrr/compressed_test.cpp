#include "rrr/compressed.hpp"

#include <gtest/gtest.h>

#include "rrr/set.hpp"
#include "support/rng.hpp"

namespace eimm {
namespace {

TEST(CompressedSet, EmptySet) {
  const CompressedSet set = CompressedSet::encode({});
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.decode().empty());
}

TEST(CompressedSet, SingleElement) {
  const CompressedSet set = CompressedSet::encode({42});
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.contains(42));
  EXPECT_FALSE(set.contains(41));
  EXPECT_FALSE(set.contains(43));
}

TEST(CompressedSet, ElementZero) {
  const CompressedSet set = CompressedSet::encode({0, 5});
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(5));
  EXPECT_EQ(set.decode(), (std::vector<VertexId>{0, 5}));
}

TEST(CompressedSet, SortsAndDedups) {
  const CompressedSet set = CompressedSet::encode({9, 3, 9, 1, 3});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.decode(), (std::vector<VertexId>{1, 3, 9}));
}

TEST(CompressedSet, RoundTripRandomSets) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<VertexId> members;
    const std::size_t count = 1 + rng.next_bounded(500);
    for (std::size_t i = 0; i < count; ++i) {
      members.push_back(static_cast<VertexId>(rng.next_bounded(1u << 24)));
    }
    const CompressedSet set = CompressedSet::encode(members);
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    EXPECT_EQ(set.decode(), members) << "trial " << trial;
  }
}

TEST(CompressedSet, ContainsAgreesWithDecode) {
  Xoshiro256 rng(13);
  std::vector<VertexId> members;
  for (int i = 0; i < 200; ++i) {
    members.push_back(static_cast<VertexId>(rng.next_bounded(10'000)));
  }
  const CompressedSet set = CompressedSet::encode(members);
  const auto decoded = set.decode();
  for (VertexId v = 0; v < 10'000; v += 7) {
    const bool expected =
        std::binary_search(decoded.begin(), decoded.end(), v);
    EXPECT_EQ(set.contains(v), expected) << v;
  }
}

TEST(CompressedSet, ForEachAscending) {
  const CompressedSet set = CompressedSet::encode({100, 5, 2000, 64, 65});
  std::vector<VertexId> seen;
  set.for_each([&](VertexId v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<VertexId>{5, 64, 65, 100, 2000}));
}

TEST(CompressedSet, LargeVertexIds) {
  const VertexId big = kInvalidVertex - 1;
  const CompressedSet set = CompressedSet::encode({big, 0});
  EXPECT_TRUE(set.contains(big));
  EXPECT_TRUE(set.contains(0));
  EXPECT_EQ(set.decode(), (std::vector<VertexId>{0, big}));
}

TEST(CompressedSet, DenseRunsCompressWell) {
  // Consecutive ids: every gap is 1 -> one byte each (plus the head).
  std::vector<VertexId> run;
  for (VertexId v = 1000; v < 2000; ++v) run.push_back(v);
  const CompressedSet set = CompressedSet::encode(run);
  EXPECT_LE(set.memory_bytes(), 1024u + 16u);
  // Versus 4 bytes/entry for the plain vector representation.
  const RRRSet vector_repr = RRRSet::make_vector(run);
  EXPECT_LT(set.memory_bytes(), vector_repr.memory_bytes() / 3);
}

TEST(CompressedSet, SparseSetsStillSmallerThanBitmap) {
  std::vector<VertexId> sparse{10, 100'000, 5'000'000};
  const CompressedSet set = CompressedSet::encode(sparse);
  const RRRSet bitmap = RRRSet::make_bitmap(sparse, 8'000'000);
  EXPECT_LT(set.memory_bytes(), bitmap.memory_bytes() / 100);
}

TEST(CompressedSet, FromEncodedRoundTrips) {
  std::vector<std::uint8_t> bytes;
  append_gap_stream(bytes, std::vector<VertexId>{3, 8, 8000});
  const CompressedSet set = CompressedSet::from_encoded(3, std::move(bytes));
  EXPECT_EQ(set.decode(), (std::vector<VertexId>{3, 8, 8000}));
}

TEST(CompressedSet, FromEncodedTruncatedPayloadThrows) {
  std::vector<std::uint8_t> bytes;
  append_gap_stream(bytes, std::vector<VertexId>{100, 50'000, 9'000'000});
  bytes.pop_back();
  const CompressedSet set = CompressedSet::from_encoded(3, std::move(bytes));
  EXPECT_THROW((void)set.decode(), CheckError);
  EXPECT_THROW((void)set.contains(9'000'000), CheckError);
}

TEST(CompressedSet, FromEncodedOverlongVarintThrows) {
  // 11 continuation bytes: wider than any 64-bit value can need.
  const CompressedSet set =
      CompressedSet::from_encoded(1, std::vector<std::uint8_t>(11, 0xFF));
  EXPECT_THROW((void)set.decode(), CheckError);
}

TEST(CompressedSet, FromEncodedUndercountedStreamThrows) {
  // Claiming more members than the payload encodes must hit the
  // truncation guard, not read past the buffer.
  std::vector<std::uint8_t> bytes;
  append_gap_stream(bytes, std::vector<VertexId>{1, 2});
  const CompressedSet set = CompressedSet::from_encoded(5, std::move(bytes));
  EXPECT_THROW((void)set.decode(), CheckError);
}

}  // namespace
}  // namespace eimm
