// Monotonic wall-clock timing used by the phase-breakdown instrumentation
// (Fig. 2) and every bench harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace eimm {

/// Simple monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction/reset.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/reset.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

  /// Elapsed nanoseconds since construction/reset.
  [[nodiscard]] std::uint64_t nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  clock::time_point start_;
};

/// Accumulates elapsed time into a double on scope exit; used to attribute
/// time to named phases without littering call sites with Timer plumbing.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) noexcept : sink_(sink) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }

 private:
  double& sink_;
  Timer timer_;
};

}  // namespace eimm
