#include "simulate/greedy.hpp"

#include <algorithm>
#include <queue>

#include "support/macros.hpp"

namespace eimm {

GreedyResult celf_greedy(const CSRGraph& forward, DiffusionModel model,
                         std::size_t k, const SpreadOptions& options) {
  const VertexId n = forward.num_vertices();
  EIMM_CHECK(k >= 1 && k <= n, "k out of range");

  struct Entry {
    VertexId v;
    double gain;
    std::size_t round;  // round in which `gain` was computed
  };
  const auto cmp = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.v > b.v;  // lowest id on ties, matching the IMM kernels
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> queue(cmp);

  std::vector<VertexId> seeds;
  // Initial marginal gains = singleton spreads.
  for (VertexId v = 0; v < n; ++v) {
    const VertexId single[1] = {v};
    queue.push({v, estimate_spread(forward, model, single, options), 0});
  }

  double current_spread = 0.0;
  while (seeds.size() < k && !queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    if (top.round == seeds.size()) {
      // Gain is up to date for the current seed set: take it (lazy
      // evaluation exploits submodularity — stale gains only shrink).
      seeds.push_back(top.v);
      current_spread += top.gain;
    } else {
      std::vector<VertexId> trial(seeds);
      trial.push_back(top.v);
      const double spread = estimate_spread(forward, model, trial, options);
      top.gain = spread - current_spread;
      top.round = seeds.size();
      queue.push(top);
    }
  }

  GreedyResult result;
  result.seeds = std::move(seeds);
  result.spread = estimate_spread(forward, model, result.seeds, options);
  return result;
}

GreedyResult exhaustive_optimal(const CSRGraph& forward, DiffusionModel model,
                                std::size_t k, const SpreadOptions& options) {
  const VertexId n = forward.num_vertices();
  EIMM_CHECK(n <= 20 && k <= 3, "exhaustive search limited to tiny instances");
  EIMM_CHECK(k >= 1 && k <= n, "k out of range");

  GreedyResult best;
  std::vector<VertexId> combo(k);
  // Enumerate k-combinations in lexicographic order.
  std::vector<VertexId> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = static_cast<VertexId>(i);
  for (;;) {
    const double spread = estimate_spread(forward, model, idx, options);
    if (spread > best.spread) {
      best.spread = spread;
      best.seeds = idx;
    }
    // Advance combination.
    std::size_t pos = k;
    while (pos > 0) {
      --pos;
      if (idx[pos] != n - k + pos) break;
      if (pos == 0) return best;
    }
    if (idx[pos] == n - k + pos) return best;
    ++idx[pos];
    for (std::size_t j = pos + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace eimm
