// NUMA topology discovery.
//
// The paper's testbed has 8 NUMA nodes (2 sockets x 4 NUMA domains); the
// NUMA-aware engine needs to know (a) how many nodes exist and (b) which
// node the calling thread runs on. Discovery reads
// /sys/devices/system/node (no libnuma dependency); on machines without
// that hierarchy it reports a single node, and every policy becomes a
// no-op — the code path stays identical.
#pragma once

#include <string>
#include <vector>

namespace eimm {

struct NumaTopology {
  /// Online node ids (usually dense 0..N-1, but sysfs allows gaps).
  std::vector<int> nodes;
  /// cpu_to_node[cpu] = node id (or 0 when unknown).
  std::vector<int> cpu_to_node;

  [[nodiscard]] int num_nodes() const noexcept {
    return static_cast<int>(nodes.size());
  }
  [[nodiscard]] bool is_numa() const noexcept { return nodes.size() > 1; }

  /// Node of the CPU the calling thread is currently on (sched_getcpu).
  [[nodiscard]] int current_node() const noexcept;
};

/// Reads the live topology once; cached for the process lifetime.
const NumaTopology& numa_topology();

/// Parses a sysfs cpulist string such as "0-3,8,10-11" into ids.
/// Exposed for unit testing the parser against crafted inputs.
std::vector<int> parse_cpu_list(const std::string& s);

}  // namespace eimm
