#include "seedselect/select.hpp"

namespace eimm {

SelectionResult efficient_select(const RRRPool& pool, CounterArray& counters,
                                 const SelectionOptions& options) {
  return efficient_select_t<NullMem>(pool, counters, options);
}

SelectionResult ripples_select(const RRRPool& pool,
                               const SelectionOptions& options) {
  return ripples_select_t<NullMem>(pool, options);
}

}  // namespace eimm
