// compressed_pool — pool footprint vs selection throughput of the three
// RRR pool backings:
//
//   flat    — the raw RRRPool / segmented-arena image (reference).
//   varint  — CompressedPool, delta-varint gap runs per set.
//   huffman — CompressedPool, varint gaps re-coded through one pool-wide
//             canonical Huffman book.
//
// Each row runs the identical full IMM workflow (same seed, same θ
// trajectory) with only ImmOptions::pool_compress changed, so the
// selection-time ratio is exactly the decode-on-enumerate cost and the
// seed sequences must match bit-for-bit — the binary exits non-zero on
// any mismatch. With EIMM_BENCH_FULL=1 it additionally enforces the
// footprint/throughput contract: every compressed backing must shrink
// pool bytes >= 2x, varint (the EIMM_POOL_COMPRESS=1 default) must keep
// the selection slowdown <= 2.5x, huffman <= 4x.
// Emits a human table plus machine-readable BENCH_compressed.json.
//
// The default configuration (LT walks over com-LJ) is the sparse-set
// regime gap coding exists for: RRR sets of tens of members out of a
// large vertex space, stored flat as 4-byte-per-member vectors. Dense
// high-spread IC workloads store most sets as bitmaps, which no
// member-stream codec can undercut — measurable here by pointing
// EIMM_COMPRESSED_WORKLOAD/EIMM_COMPRESSED_MODEL at one.
//
// Extra knobs on top of the common EIMM_* set:
//   EIMM_COMPRESSED_WORKLOAD  workload to run (default com-LJ)
//   EIMM_COMPRESSED_MODEL     ic | lt (default lt — the sparse regime)
//   EIMM_BENCH_FULL           1 = enforce the ratio guards (timing-free
//                             seed identity is always enforced)
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/imm.hpp"
#include "io/json_log.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

using namespace eimm;
using namespace eimm::bench;

namespace {

constexpr double kMinBytesRatio = 2.0;
// The default codec (varint — what EIMM_POOL_COMPRESS=1 resolves to)
// must stay within the tight paper contract; huffman is the opt-in
// max-compression tier and pays bit-level decode on every enumeration
// (~3x with the prefix-LUT decoder, HBMax-range), so it gets a looser
// documented cap instead of a false failure.
constexpr double kMaxSlowdownVarint = 2.5;
constexpr double kMaxSlowdownHuffman = 4.0;

CompressedBenchResult row_from_run(const std::string& workload,
                                   const std::string& backing,
                                   const ImmResult& run,
                                   const ImmResult& flat) {
  CompressedBenchResult row;
  row.workload = workload;
  row.backing = backing;
  row.threads = run.threads_used;
  row.num_rrr_sets = run.num_rrr_sets;
  row.pool_bytes = run.rrr_memory_bytes;
  row.payload_bytes = run.compressed_payload_bytes;
  row.encode_seconds = run.encode_seconds;
  row.selection_seconds = run.breakdown.selection_seconds;
  if (run.breakdown.selection_seconds > 0.0) {
    row.sets_per_second = static_cast<double>(run.num_rrr_sets) /
                          run.breakdown.selection_seconds;
  }
  if (run.rrr_memory_bytes > 0) {
    row.bytes_ratio = static_cast<double>(flat.rrr_memory_bytes) /
                      static_cast<double>(run.rrr_memory_bytes);
  }
  if (flat.breakdown.selection_seconds > 0.0) {
    row.slowdown = run.breakdown.selection_seconds /
                   flat.breakdown.selection_seconds;
  }
  row.seeds_match_flat = run.seeds == flat.seeds;
  return row;
}

}  // namespace

int main() {
  const BenchConfig config = load_config();
  print_banner("compressed_pool — gap-coded RRR pool footprint/throughput",
               config);

  const std::string workload =
      env_string("EIMM_COMPRESSED_WORKLOAD").value_or("com-LJ");
  const std::string model_name =
      env_string("EIMM_COMPRESSED_MODEL").value_or("lt");
  const DiffusionModel model = model_name == "ic"
                                   ? DiffusionModel::kIndependentCascade
                                   : DiffusionModel::kLinearThreshold;
  const bool full = env_int("EIMM_BENCH_FULL", 0) != 0;

  const DiffusionGraph graph = load_workload(config, workload, model);
  ImmOptions options = imm_options(config, model, config.max_threads);

  std::vector<CompressedBenchResult> rows;

  options.pool_compress = PoolCompression::kNone;
  const ImmResult flat = run_efficient_imm(graph, options);
  rows.push_back(row_from_run(workload, "flat", flat, flat));

  options.pool_compress = PoolCompression::kVarint;
  const ImmResult varint = run_efficient_imm(graph, options);
  rows.push_back(row_from_run(workload, "varint", varint, flat));

  options.pool_compress = PoolCompression::kHuffman;
  const ImmResult huffman = run_efficient_imm(graph, options);
  rows.push_back(row_from_run(workload, "huffman", huffman, flat));

  AsciiTable table({"Backing", "Pool MB", "Payload MB", "Ratio", "Encode s",
                    "Select s", "Slowdown", "Sets/s", "Seeds=flat"});
  for (const CompressedBenchResult& row : rows) {
    table.new_row()
        .add(row.backing)
        .add(static_cast<double>(row.pool_bytes) / 1e6, 2)
        .add(static_cast<double>(row.payload_bytes) / 1e6, 2)
        .add(row.bytes_ratio, 2)
        .add(row.encode_seconds, 3)
        .add(row.selection_seconds, 3)
        .add(row.slowdown, 2)
        .add(row.sets_per_second, 0)
        .add(row.seeds_match_flat ? "yes" : "NO");
  }
  table.set_title("Compressed pool: " + workload + " (" +
                  std::to_string(flat.num_rrr_sets) + " RRR sets, " +
                  std::to_string(flat.threads_used) + " threads)");
  table.print(std::cout);

  const std::string path = write_compressed_bench_json_file(
      bench_json_path("BENCH_compressed.json"), rows);
  std::printf("\nresults: %s\n", path.c_str());

  bool ok = true;
  for (const CompressedBenchResult& row : rows) {
    if (!row.seeds_match_flat) {
      std::fprintf(stderr, "ERROR: %s seeds deviate from the flat run\n",
                   row.backing.c_str());
      ok = false;
    }
    if (row.backing == "flat") continue;
    if (full && row.bytes_ratio < kMinBytesRatio) {
      std::fprintf(stderr,
                   "ERROR: %s pool-bytes ratio %.2f below the %.1fx floor\n",
                   row.backing.c_str(), row.bytes_ratio, kMinBytesRatio);
      ok = false;
    }
    const double cap =
        row.backing == "huffman" ? kMaxSlowdownHuffman : kMaxSlowdownVarint;
    if (full && row.slowdown > cap) {
      std::fprintf(stderr,
                   "ERROR: %s selection slowdown %.2f above the %.1fx cap\n",
                   row.backing.c_str(), row.slowdown, cap);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
