#include "rrr/huffman.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "rrr/compressed.hpp"
#include "rrr/gap_codec.hpp"
#include "support/macros.hpp"
#include "support/rng.hpp"

namespace eimm {
namespace {

TEST(HuffmanCodec, EmptyInput) {
  const auto encoded = HuffmanCodec::encode({});
  EXPECT_EQ(encoded.payload_bits, 0u);
  EXPECT_TRUE(HuffmanCodec::decode(encoded).empty());
}

TEST(HuffmanCodec, SingleSymbolAlphabet) {
  const std::vector<std::uint8_t> data(100, 0x42);
  const auto encoded = HuffmanCodec::encode(data);
  // 1-bit codes: 100 bits ≈ 13 bytes, far below the 100-byte input.
  EXPECT_EQ(encoded.payload_bits, 100u);
  EXPECT_EQ(HuffmanCodec::decode(encoded), data);
}

TEST(HuffmanCodec, TwoSymbols) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 64; ++i) data.push_back(i % 2 ? 0xAA : 0x55);
  const auto encoded = HuffmanCodec::encode(data);
  EXPECT_EQ(HuffmanCodec::decode(encoded), data);
  EXPECT_EQ(encoded.payload_bits, 64u);  // 1 bit per symbol
}

TEST(HuffmanCodec, RoundTripRandomBytes) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint8_t> data(1 + rng.next_bounded(5000));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_bounded(256));
    const auto encoded = HuffmanCodec::encode(data);
    EXPECT_EQ(HuffmanCodec::decode(encoded), data) << "trial " << trial;
  }
}

TEST(HuffmanCodec, RoundTripSkewedBytes) {
  // Geometric-ish distribution, like varint gap streams.
  Xoshiro256 rng(7);
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 10000; ++i) {
    std::uint8_t value = 1;
    while (rng.next_bool(0.5) && value < 64) value *= 2;
    data.push_back(value);
  }
  const auto encoded = HuffmanCodec::encode(data);
  EXPECT_EQ(HuffmanCodec::decode(encoded), data);
  // Skewed input must compress well below 8 bits/symbol.
  EXPECT_LT(encoded.payload_bits, 8u * data.size() * 6 / 10);
}

TEST(HuffmanCodec, DeterministicEncoding) {
  std::vector<std::uint8_t> data{5, 5, 7, 7, 7, 9};
  const auto a = HuffmanCodec::encode(data);
  const auto b = HuffmanCodec::encode(data);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.code_lengths, b.code_lengths);
}

TEST(HuffmanCodec, CorruptStreamDetected) {
  const std::vector<std::uint8_t> data(50, 1);
  auto encoded = HuffmanCodec::encode(data);
  encoded.bits.clear();  // truncate the payload entirely
  EXPECT_THROW(HuffmanCodec::decode(encoded), CheckError);
}

TEST(HuffmanSet, EmptySet) {
  const HuffmanSet set = HuffmanSet::encode({});
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.decode().empty());
  EXPECT_FALSE(set.contains(0));
}

TEST(HuffmanSet, RoundTrip) {
  const HuffmanSet set = HuffmanSet::encode({9, 3, 9, 1, 200, 64});
  EXPECT_EQ(set.size(), 5u);
  EXPECT_EQ(set.decode(), (std::vector<VertexId>{1, 3, 9, 64, 200}));
  EXPECT_TRUE(set.contains(64));
  EXPECT_FALSE(set.contains(65));
}

TEST(HuffmanSet, RoundTripRandomSets) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<VertexId> members;
    const std::size_t count = 1 + rng.next_bounded(800);
    for (std::size_t i = 0; i < count; ++i) {
      members.push_back(static_cast<VertexId>(rng.next_bounded(1u << 22)));
    }
    const HuffmanSet set = HuffmanSet::encode(members);
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    EXPECT_EQ(set.decode(), members) << trial;
  }
}

TEST(HuffmanSet, CompressesDenseRunsBeyondVarint) {
  // Consecutive ids: gaps are all 1 -> a single-symbol byte stream that
  // Huffman packs ~8x below the varint bytes (HBMax's win case).
  std::vector<VertexId> run;
  for (VertexId v = 5000; v < 15000; ++v) run.push_back(v);
  const HuffmanSet huffman = HuffmanSet::encode(run);
  const CompressedSet varint = CompressedSet::encode(run);
  EXPECT_LT(huffman.memory_bytes(), varint.memory_bytes() / 4);
  EXPECT_EQ(huffman.decode(), varint.decode());
}

TEST(HuffmanSet, VertexZeroAndLargeIds) {
  const HuffmanSet set = HuffmanSet::encode({0, kInvalidVertex - 1});
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(kInvalidVertex - 1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(HuffmanSet, EncodeBitIdenticalToCompressingVarintStream) {
  // HuffmanSet::encode builds its gap bytes directly through the shared
  // rrr/gap_codec encoder — the payload must be bit-identical to
  // Huffman-coding the canonical gap stream of the same members.
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<VertexId> members;
    const std::size_t count = rng.next_bounded(600);
    for (std::size_t i = 0; i < count; ++i) {
      members.push_back(static_cast<VertexId>(rng.next_bounded(1u << 22)));
    }
    const HuffmanSet set = HuffmanSet::encode(members);

    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    std::vector<std::uint8_t> gap_bytes;
    append_gap_stream(gap_bytes, members);
    const HuffmanCodec::Encoded reference = HuffmanCodec::encode(gap_bytes);

    EXPECT_EQ(set.encoded().code_lengths, reference.code_lengths) << trial;
    EXPECT_EQ(set.encoded().payload_bits, reference.payload_bits) << trial;
    EXPECT_EQ(set.encoded().bits, reference.bits) << trial;
  }
}

TEST(HuffmanCodec, OverstatedPayloadBitsThrows) {
  auto encoded = HuffmanCodec::encode(std::vector<std::uint8_t>(64, 3));
  encoded.payload_bits = encoded.bits.size() * 8 + 1;
  EXPECT_THROW(HuffmanCodec::decode(encoded), CheckError);
}

TEST(HuffmanCodec, TruncatedBitsThrow) {
  Xoshiro256 rng(23);
  std::vector<std::uint8_t> data(2000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_bounded(16));
  auto encoded = HuffmanCodec::encode(data);
  ASSERT_GT(encoded.bits.size(), 4u);
  encoded.bits.resize(encoded.bits.size() / 2);
  EXPECT_THROW(HuffmanCodec::decode(encoded), CheckError);
}

TEST(HuffmanCodec, StreamMatchingNoCodeThrows) {
  // A codebook whose only 2-bit code is 00 cannot decode an all-ones
  // stream: decode_one must give up at 32 bits with CheckError instead
  // of walking past the table.
  HuffmanCodec::Encoded encoded;
  encoded.code_lengths[65] = 2;
  encoded.bits.assign(8, 0xFF);
  encoded.payload_bits = 64;
  EXPECT_THROW(HuffmanCodec::decode(encoded), CheckError);
}

}  // namespace
}  // namespace eimm
